"""Command-line interface for running imputation experiments.

Sweeps run through the experiment engine (:mod:`repro.engine`): every
(dataset, scenario, method) cell is a hashable job, ``--workers N`` fans the
jobs out over a process pool, and ``--cache-dir DIR`` persists each completed
cell to a JSONL store so an interrupted sweep can be resumed — re-running the
same command (or using the ``resume`` subcommand) executes only the cells
that are still missing.

Examples
--------
List what is available::

    python -m repro.evaluation.cli list

Run one (dataset, scenario, method) cell::

    python -m repro.evaluation.cli run --dataset climate --scenario mcar \
        --methods deepmvi cdrec svdimp --size tiny

Regenerate one of the paper's experiments (same grids the benchmark harness
uses, printed as a table), four cells at a time with a persistent cache::

    python -m repro.evaluation.cli experiment figure5 --size tiny \
        --workers 4 --cache-dir ~/.cache/repro/figure5

Resume that sweep after an interruption (only missing cells execute)::

    python -m repro.evaluation.cli resume figure5 --size tiny \
        --workers 4 --cache-dir ~/.cache/repro/figure5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.baselines.registry import create_imputer, list_methods
from repro.core.config import DeepMVIConfig
from repro.data.datasets import list_datasets, load_dataset
from repro.data.missing import MissingScenario, list_scenarios
from repro.evaluation.experiments import (
    EXPERIMENTS,
    STANDARD_SCENARIOS,
    list_experiments,
    scenario_for,
)
from repro.evaluation.reporting import format_table, pivot
from repro.evaluation.runner import ExperimentRunner


def _deepmvi_kwargs(size: str) -> dict:
    """Benchmark-scale DeepMVI settings keyed by dataset size preset."""
    if size == "tiny":
        return {"config": DeepMVIConfig(max_epochs=12, samples_per_epoch=256,
                                        patience=3, n_filters=16)}
    return {"config": DeepMVIConfig(max_epochs=20, samples_per_epoch=512, patience=4)}


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 runs serially")
    parser.add_argument("--cache-dir", default=None,
                        help="persist per-cell results here and skip "
                             "already-completed cells on re-runs")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-eval", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list datasets, scenarios, methods, experiments")

    run = subparsers.add_parser("run", help="run methods on one dataset/scenario")
    run.add_argument("--dataset", required=True, choices=list_datasets())
    run.add_argument("--scenario", required=True, choices=list_scenarios())
    run.add_argument("--methods", nargs="+", required=True)
    run.add_argument("--size", default="tiny", choices=["tiny", "small", "default"])
    run.add_argument("--block-size", type=int, default=10)
    run.add_argument("--incomplete-fraction", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(run)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's experiments")
    experiment.add_argument("experiment_id", choices=list_experiments())
    experiment.add_argument("--size", default="tiny",
                            choices=["tiny", "small", "default"])
    experiment.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(experiment)

    resume = subparsers.add_parser(
        "resume", help="resume an interrupted experiment sweep from its cache")
    resume.add_argument("experiment_id", choices=list_experiments())
    resume.add_argument("--size", default="tiny",
                        choices=["tiny", "small", "default"])
    resume.add_argument("--seed", type=int, default=0)
    resume.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 runs serially")
    resume.add_argument("--cache-dir", required=True,
                        help="cache directory of the interrupted sweep")
    return parser


def _command_list() -> int:
    print("datasets:   " + ", ".join(list_datasets()))
    print("scenarios:  " + ", ".join(list_scenarios()))
    print("methods:    " + ", ".join(list_methods()))
    print("experiments:" + " " + ", ".join(list_experiments()))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, size=args.size, seed=args.seed)
    params = {}
    if args.scenario in ("mcar", "mcar_points"):
        params = {"incomplete_fraction": args.incomplete_fraction,
                  "block_size": args.block_size}
    elif args.scenario == "blackout":
        params = {"block_size": args.block_size}
    else:
        params = {"incomplete_fraction": args.incomplete_fraction}
    scenario = MissingScenario(args.scenario, params)

    runner = ExperimentRunner(
        methods=args.methods,
        method_kwargs={m.lower(): _deepmvi_kwargs(args.size)
                       for m in args.methods
                       if m.lower().startswith("deepmvi")},
        seed=args.seed)
    results = runner.run_grid([data], [scenario], seed=args.seed,
                              workers=args.workers, cache_dir=args.cache_dir)
    _report_failures(runner)
    print(format_table(pivot(results, index="method", columns="scenario", value="mae"),
                       index_name="method"))
    runtimes = ", ".join(f"{r.method}={r.runtime_seconds:.2f}s" for r in results)
    print(f"\nruntimes: {runtimes}")
    return 0 if not runner.last_report.failed else 1


def _command_experiment(args: argparse.Namespace) -> int:
    spec = EXPERIMENTS[args.experiment_id]
    print(f"{spec.experiment_id}: {spec.description}")
    if not spec.methods:
        from repro.data.datasets import table1_summary
        for row in table1_summary():
            print(row)
        return 0

    runner = ExperimentRunner(
        methods=list(spec.methods),
        method_kwargs={name: _deepmvi_kwargs(args.size) for name in spec.methods
                       if name.startswith("deepmvi")},
        seed=args.seed)
    datasets = [load_dataset(name, size=args.size, seed=args.seed)
                for name in spec.datasets]
    scenarios = [scenario_for(name) for name in spec.scenarios
                 if name in STANDARD_SCENARIOS]
    if not scenarios:
        scenarios = [scenario_for("mcar")]
    results = runner.run_grid(datasets, scenarios, seed=args.seed,
                              workers=args.workers, cache_dir=args.cache_dir)
    print(f"[engine] {runner.last_report.describe()}")
    _report_failures(runner)
    print(format_table(pivot(results, index="dataset", columns="method", value="mae")))
    return 0 if not runner.last_report.failed else 1


def _report_failures(runner: ExperimentRunner) -> None:
    report = runner.last_report
    if report is None or not report.failed:
        return
    print(f"[engine] {report.failed} cell(s) failed; last error:", file=sys.stderr)
    print(report.failures[-1].error, file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command in ("experiment", "resume"):
        return _command_experiment(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
