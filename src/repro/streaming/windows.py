"""Sliding-window view of an unbounded time-series stream.

The streaming layer never sees a whole dataset at once: data arrives tick by
tick and is imputed window by window.  :class:`StreamWindow` is one such
chunk — a small :class:`~repro.data.tensor.TimeSeriesTensor` slice annotated
with its absolute time span — and :class:`WindowedStream` produces them,
either by replaying a recorded tensor (benchmarks, backtests) or by
buffering a live iterator of per-tick arrays (serving).

Windows may overlap: with ``stride < window_size`` each new window re-reads
the tail of the previous one, which gives incremental imputers warm context
at the cost of re-imputing the overlap.  :class:`HistoryBuffer` is the
de-duplicating accumulator both the streaming imputer and the streaming
service use to grow a *bounded* training history out of (possibly
overlapping) windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.data.dimensions import Dimension
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ValidationError

__all__ = ["HistoryBuffer", "StreamWindow", "WindowedStream"]


@dataclass
class StreamWindow:
    """One chunk of a stream: a tensor slice plus its absolute time span.

    Parameters
    ----------
    index:
        0-based position of the window in its stream.
    start, stop:
        Absolute time span ``[start, stop)`` the window covers.
    tensor:
        The windowed data; missing cells (sensor dropouts) are marked in
        its mask exactly as in a full dataset tensor.
    last:
        True for the final window of a finite stream.
    """

    index: int
    start: int
    stop: int
    tensor: TimeSeriesTensor
    last: bool = False

    @property
    def size(self) -> int:
        """Number of time steps in the window."""
        return self.stop - self.start

    def __repr__(self) -> str:
        return (f"StreamWindow(index={self.index}, span=[{self.start}, "
                f"{self.stop}), missing={self.tensor.missing_fraction:.1%})")


def _window_starts(n_time: int, window_size: int, stride: int) -> List[int]:
    """Start offsets covering ``[0, n_time)`` with a final catch-up window.

    The tail is never silently dropped: when the last strided start does not
    reach the end of the data, one extra window ending exactly at ``n_time``
    is appended (it overlaps its predecessor more than ``stride`` would).
    """
    starts = list(range(0, n_time - window_size + 1, stride))
    if not starts:
        starts = [0]
    if starts[-1] + window_size < n_time:
        starts.append(n_time - window_size)
    return starts


class WindowedStream:
    """An iterable of :class:`StreamWindow` chunks.

    Build one with :meth:`from_tensor` (replay a recorded dataset; the
    stream is re-iterable) or :meth:`from_ticks` (buffer a live feed of
    per-tick arrays; one-shot, the ticks are consumed as windows are
    drawn).
    """

    def __init__(self, factory: Callable[[], Iterator[StreamWindow]],
                 window_size: int, stride: int, name: str = "stream",
                 n_windows: Optional[int] = None) -> None:
        self._factory = factory
        self.window_size = window_size
        self.stride = stride
        self.name = name
        #: number of windows, when the stream is finite and known in advance
        self.n_windows = n_windows

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_geometry(window_size: int, stride: Optional[int]) -> int:
        if window_size < 1:
            raise ValidationError(f"window_size must be >= 1, got {window_size}")
        stride = max(1, window_size // 2) if stride is None else stride
        if stride < 1:
            raise ValidationError(f"stride must be >= 1, got {stride}")
        if stride > window_size:
            # Gapped windows would leave time steps no window ever covers,
            # and a refit history stitched from them would treat the gap
            # edges as adjacent steps.
            raise ValidationError(
                f"stride {stride} must not exceed window_size {window_size} "
                "(windows must tile or overlap the timeline)")
        return stride

    @classmethod
    def from_tensor(cls, tensor: TimeSeriesTensor, window_size: int,
                    stride: Optional[int] = None) -> "WindowedStream":
        """Replay ``tensor`` as overlapping sliding windows.

        ``stride`` defaults to ``window_size // 2`` (50% overlap); a window
        larger than the tensor degrades to a single whole-tensor window.
        The final window always ends at the last time step, so no tail data
        is lost to stride arithmetic.
        """
        stride = cls._check_geometry(window_size, stride)
        window_size = min(window_size, tensor.n_time)
        starts = _window_starts(tensor.n_time, window_size, stride)

        def factory() -> Iterator[StreamWindow]:
            for index, start in enumerate(starts):
                stop = start + window_size
                yield StreamWindow(
                    index=index, start=start, stop=stop,
                    tensor=tensor.slice_time(start, stop),
                    last=index == len(starts) - 1,
                )

        return cls(factory, window_size, stride, name=tensor.name,
                   n_windows=len(starts))

    @classmethod
    def from_ticks(cls, ticks: Iterable, dimensions: Sequence[Dimension],
                   window_size: int, stride: Optional[int] = None,
                   name: str = "stream") -> "WindowedStream":
        """Chunk a live feed of per-tick arrays into sliding windows.

        Each tick is one time step shaped like the member dimensions (a
        scalar for a dimensionless stream, ``(n_series,)`` for one
        categorical dimension, ...); non-finite entries are the missing
        cells.  A bounded buffer of the last ``window_size`` ticks is kept;
        a window is emitted every ``stride`` ticks once the buffer fills.
        As with :meth:`from_tensor`, a finite feed never loses its tail: a
        final catch-up window covers any trailing ticks the stride missed
        (a feed shorter than ``window_size`` yields one whole-feed window),
        and the final window carries ``last=True``.  The stream is one-shot
        — iterating consumes the ticks.
        """
        stride = cls._check_geometry(window_size, stride)
        dimensions = list(dimensions)

        def factory() -> Iterator[StreamWindow]:
            def make_window(index: int, size: int, seen: int) -> StreamWindow:
                values = np.stack(buffer[-size:], axis=-1)
                return StreamWindow(
                    index=index, start=seen - size, stop=seen,
                    tensor=TimeSeriesTensor(values=values,
                                            dimensions=list(dimensions),
                                            name=name))

            buffer: List[np.ndarray] = []
            seen = 0
            index = 0
            # One window of lookahead so the final one can carry last=True.
            pending: Optional[StreamWindow] = None
            for tick in ticks:
                buffer.append(np.asarray(tick, dtype=np.float64))
                seen += 1
                if len(buffer) > window_size:
                    buffer.pop(0)
                if seen >= window_size and (seen - window_size) % stride == 0:
                    if pending is not None:
                        yield pending
                    pending = make_window(index, window_size, seen)
                    index += 1
            if seen and (pending is None or pending.stop < seen):
                # Catch-up window over the tail the stride arithmetic missed.
                if pending is not None:
                    yield pending
                pending = make_window(index, min(window_size, seen), seen)
            if pending is not None:
                pending.last = True
                yield pending

        return cls(factory, window_size, stride, name=name)

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[StreamWindow]:
        return self._factory()

    def __repr__(self) -> str:
        count = "?" if self.n_windows is None else str(self.n_windows)
        return (f"WindowedStream(name={self.name!r}, window={self.window_size}, "
                f"stride={self.stride}, windows={count})")


class HistoryBuffer:
    """Bounded, overlap-deduplicating accumulator of stream windows.

    Feeding overlapping windows into a naive concatenation would duplicate
    the overlap and skew any model refit on the history; the buffer tracks
    the absolute time span it has absorbed and appends only the genuinely
    new suffix of each window.  ``max_history`` bounds the kept time steps
    (oldest dropped first) so incremental refits stay cheap no matter how
    long the stream runs.
    """

    def __init__(self, max_history: Optional[int] = 512) -> None:
        if max_history is not None and max_history < 1:
            raise ValidationError(
                f"max_history must be >= 1 or None, got {max_history}")
        self.max_history = max_history
        self._tensor: Optional[TimeSeriesTensor] = None
        self._stop = 0          # absolute stop of the absorbed span
        self.windows_absorbed = 0

    # ------------------------------------------------------------------ #
    @property
    def steps(self) -> int:
        """Time steps currently held."""
        return 0 if self._tensor is None else self._tensor.n_time

    def tensor(self) -> Optional[TimeSeriesTensor]:
        """The accumulated history tensor (``None`` before the first absorb)."""
        return self._tensor

    def absorb(self, window: StreamWindow) -> None:
        """Fold ``window`` into the history, skipping already-seen steps.

        A window that starts *beyond* the absorbed span (a gap — e.g. a
        feed that dropped ticks) restarts the history from that window:
        concatenating across the gap would make the gap edges look like
        adjacent time steps to any model refit on the history.
        """
        if self._tensor is not None and window.start > self._stop:
            self._tensor = None
        fresh_from = max(0, self._stop - window.start) \
            if self._tensor is not None else 0
        if fresh_from >= window.size:
            return  # the window is entirely inside the absorbed span
        fresh = window.tensor if fresh_from == 0 else \
            window.tensor.slice_time(fresh_from, window.size)
        if self._tensor is None:
            values, mask = fresh.values, fresh.mask
        else:
            values = np.concatenate([self._tensor.values, fresh.values], axis=-1)
            mask = np.concatenate([self._tensor.mask, fresh.mask], axis=-1)
        if self.max_history is not None and values.shape[-1] > self.max_history:
            values = values[..., -self.max_history:]
            mask = mask[..., -self.max_history:]
        self._tensor = TimeSeriesTensor(
            values=values, dimensions=list(fresh.dimensions),
            mask=mask, name=fresh.name)
        self._stop = max(self._stop, window.stop)
        self.windows_absorbed += 1

    def __repr__(self) -> str:
        return (f"HistoryBuffer(steps={self.steps}, "
                f"windows={self.windows_absorbed}, max={self.max_history})")
