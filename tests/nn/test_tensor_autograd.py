"""Behavioural tests of the autograd graph machinery."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, no_grad, is_grad_enabled


class TestGraphBehaviour:
    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        out = (x * 3.0) + (x * 5.0)
        out.backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_diamond_graph_gradient(self):
        # f(x) = (x*2) * (x*3) = 6x^2 -> df/dx = 12x
        x = Tensor([2.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()
        np.testing.assert_allclose(x.grad, [24.0])

    def test_deep_chain_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        np.testing.assert_allclose(x.grad, [1.1 ** 50], rtol=1e-10)

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([0.5, 2.0]))
        np.testing.assert_allclose(x.grad, [1.0, 4.0])

    def test_multiple_backward_calls_accumulate(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_clears(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_requires_grad_gets_no_gradient(self):
        x = Tensor([1.0], requires_grad=False)
        y = Tensor([2.0], requires_grad=True)
        (x * y).backward()
        assert x.grad is None
        np.testing.assert_allclose(y.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = y * 4.0
        z.backward()
        assert x.grad is None
        assert not y.requires_grad

    def test_topological_order_with_shared_subexpression(self):
        # s = x + x; out = s * s; d out / dx = 2 * s * 2 = 8x
        x = Tensor([3.0], requires_grad=True)
        s = x + x
        (s * s).backward()
        np.testing.assert_allclose(x.grad, [24.0])


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_tensor_created_inside_no_grad_never_requires_grad(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
        assert not x.requires_grad


class TestConstruction:
    def test_as_tensor_passthrough(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x

    def test_as_tensor_from_list(self):
        x = as_tensor([1, 2, 3])
        assert x.shape == (3,)
        assert x.data.dtype == np.float64

    def test_tensor_from_tensor_copies_data_reference(self):
        x = Tensor([1.0, 2.0])
        y = Tensor(x)
        np.testing.assert_allclose(y.data, x.data)

    def test_shape_ndim_size_len(self):
        x = Tensor(np.zeros((3, 4)))
        assert x.shape == (3, 4)
        assert x.ndim == 2
        assert x.size == 12
        assert len(x) == 3

    def test_item_on_scalar(self):
        assert Tensor(5.0).item() == 5.0

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBroadcastGradients:
    def test_broadcast_add_sums_over_broadcast_axis(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [5.0, 5.0, 5.0])

    def test_broadcast_mul_keepdim_axis(self):
        scale = Tensor(np.ones((1, 3)), requires_grad=True)
        x = Tensor(np.full((4, 3), 2.0))
        (x * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, [[8.0, 8.0, 8.0]])

    def test_scalar_broadcast_gradient(self):
        scalar = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 2)))
        (x * scalar).sum().backward()
        assert scalar.grad.shape == ()
        assert scalar.grad == pytest.approx(4.0)
