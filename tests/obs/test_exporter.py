"""Exporter tests: a real HTTP scrape against the daemon-thread server."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import MetricsRegistry, feed_snapshot


@pytest.fixture
def exporter():
    registry = MetricsRegistry()
    registry.counter("served_total").inc(42)
    with MetricsExporter(port=0, reg=registry) as exporter:
        yield exporter


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


class TestScrape:
    def test_metrics_endpoint(self, exporter):
        status, headers, body = _get(exporter.url)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_served_total 42" in body

    def test_healthz(self, exporter):
        status, _, body = _get(
            f"http://127.0.0.1:{exporter.port}/healthz")
        assert status == 200
        assert body == b"ok"

    def test_unknown_path_is_404(self, exporter):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://127.0.0.1:{exporter.port}/nope")
        assert excinfo.value.code == 404

    def test_collectors_pull_at_scrape_time(self, exporter):
        state = {"depth": 3}
        exporter.add_collector(lambda: feed_snapshot(
            {"source": "gateway", "queue_depth": state["depth"]},
            reg=exporter.registry))
        _, _, body = _get(exporter.url)
        assert b"repro_gateway_queue_depth 3" in body
        state["depth"] = 9
        _, _, body = _get(exporter.url)
        assert b"repro_gateway_queue_depth 9" in body

    def test_failing_collector_does_not_kill_the_scrape(self, exporter):
        def boom():
            raise RuntimeError("dead source")

        exporter.add_collector(boom)
        status, _, body = _get(exporter.url)
        assert status == 200
        assert b"repro_served_total 42" in body


class TestLifecycle:
    def test_ephemeral_port_resolves_and_stop_frees_it(self):
        exporter = MetricsExporter(port=0, reg=MetricsRegistry())
        exporter.start()
        port = exporter.port
        assert port != 0
        exporter.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(f"http://127.0.0.1:{port}/healthz", timeout=0.5)

    def test_start_is_idempotent(self):
        exporter = MetricsExporter(port=0, reg=MetricsRegistry())
        try:
            assert exporter.start() is exporter.start()
        finally:
            exporter.stop()
