"""BRITS-style bidirectional recurrent imputation (Cao et al., 2018).

BRITS feeds the column ``X[:, t]`` (the values of *all* series at time
``t``) into a bidirectional RNN; the forward state at ``t`` summarises the
past, the backward state summarises the future, and together they predict
the column at ``t`` without ever seeing it.  Missing entries are replaced by
the model's own prediction as the recursion advances.

This reproduction uses a GRU instead of the original LSTM-with-decay and
trains on random temporal crops with additional artificial masking, which
matches the method family at laptop scale (the paper's observation — BRITS
over-relies on the immediate temporal neighbourhood and degrades in the
Blackout scenario — is architectural and survives the simplification).
"""

from __future__ import annotations

import logging
from typing import Optional

import numpy as np

from repro.baselines.base import BaseImputer
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import NotFittedError
from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.rnn import BidirectionalGRU
from repro.nn.tensor import Tensor, no_grad

logger = logging.getLogger(__name__)


class _BRITSNetwork(Module):
    """Bidirectional GRU over time columns with a per-step regression head."""

    def __init__(self, n_series: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = BidirectionalGRU(2 * n_series, hidden_dim, rng=rng)
        self.head = Linear(2 * hidden_dim, n_series, rng=rng)

    def forward(self, values: np.ndarray, mask: np.ndarray) -> Tensor:
        """Predict every column from its bidirectional context.

        ``values``/``mask`` are ``(B, T, n_series)``; missing values must be
        zero-filled.  Returns ``(B, T, n_series)`` predictions.
        """
        inputs = Tensor(np.concatenate([values * mask, mask], axis=-1))
        forward_track, backward_track = self.encoder(inputs)
        combined = F.concatenate([forward_track, backward_track], axis=-1)
        return self.head(combined)


class BRITSImputer(BaseImputer):
    """Bidirectional recurrent imputation for time series."""

    name = "BRITS"
    _fitted_attributes = ("network", "_matrix", "_mask", "_mean", "_std",
                         "_fitted_tensor")

    def __init__(self, hidden_dim: int = 32, crop_length: int = 48,
                 n_epochs: int = 15, batch_size: int = 8,
                 learning_rate: float = 1e-2, artificial_missing: float = 0.1,
                 seed: int = 0, verbose: bool = False):
        self.hidden_dim = hidden_dim
        self.crop_length = crop_length
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.artificial_missing = artificial_missing
        self.seed = seed
        self.verbose = verbose
        self.network: Optional[_BRITSNetwork] = None

    # ------------------------------------------------------------------ #
    def fit(self, tensor: TimeSeriesTensor) -> "BRITSImputer":
        rng = np.random.default_rng(self.seed)
        normalised, self._mean, self._std = tensor.normalised()
        matrix, mask = normalised.to_matrix()
        matrix = np.where(mask == 1, matrix, 0.0)
        self._matrix, self._mask = matrix, mask
        self._fitted_tensor = tensor

        n_series, length = matrix.shape
        crop = min(self.crop_length, length)
        self.network = _BRITSNetwork(n_series, self.hidden_dim, rng)
        optimizer = Adam(self.network.parameters(), lr=self.learning_rate)

        for epoch in range(self.n_epochs):
            starts = rng.integers(0, max(1, length - crop + 1), size=self.batch_size)
            values = np.stack([matrix[:, s:s + crop].T for s in starts])     # (B, L, N)
            avail = np.stack([mask[:, s:s + crop].T for s in starts])
            # Artificial masking: the loss is evaluated on cells the network
            # cannot see, mirroring the self-supervised setup of the paper.
            hide = (rng.random(avail.shape) < self.artificial_missing) & (avail == 1)
            visible = avail * (1.0 - hide)
            prediction = self.network(values, visible)
            loss_mask = avail  # supervise on all truly observed cells
            loss = mse_loss(prediction, Tensor(values), mask=loss_mask)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
            if self.verbose:
                logger.info("[brits] epoch %d loss=%.4f",
                            epoch, loss.item())
        return self

    # ------------------------------------------------------------------ #
    def impute(self, tensor: Optional[TimeSeriesTensor] = None) -> TimeSeriesTensor:
        if self.network is None:
            raise NotFittedError("call fit() before impute()")
        if tensor is None:
            tensor = self._fitted_tensor
        matrix, mask = self._matrix, self._mask
        n_series, length = matrix.shape
        crop = min(self.crop_length, length)
        predictions = np.zeros_like(matrix)
        counts = np.zeros_like(matrix)

        self.network.eval()
        with no_grad():
            for start in range(0, length, crop):
                stop = min(start + crop, length)
                begin = max(0, stop - crop)
                values = matrix[:, begin:stop].T[None]
                avail = mask[:, begin:stop].T[None]
                output = self.network(values, avail).data[0].T        # (N, L)
                predictions[:, begin:stop] += output
                counts[:, begin:stop] += 1.0
        predictions /= np.maximum(counts, 1.0)
        completed = np.where(mask == 1, matrix, predictions)
        completed = completed * self._std + self._mean
        return tensor.fill(completed.reshape(tensor.values.shape))
