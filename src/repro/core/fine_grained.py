"""Fine-grained local signal (Section 4.1.1, Eqn. 15 of the paper).

For a target position ``t`` inside window ``j`` the fine-grained signal is
simply the mean of the *available* values inside that window.  It carries no
trainable parameters — it is an input feature that the output layer learns
to weigh against the temporal-transformer and kernel-regression signals —
and is most useful for very small missing blocks (Figure 8 of the paper).
"""

from __future__ import annotations

import numpy as np


def fine_grained_signal(window_values: np.ndarray, window_avail: np.ndarray,
                        target_window: np.ndarray) -> np.ndarray:
    """Masked mean of the target window's observed values.

    Parameters
    ----------
    window_values:
        ``(B, C, w)`` context-window values (missing entries may hold
        anything; they are excluded through the mask).
    window_avail:
        ``(B, C, w)`` availability mask.
    target_window:
        ``(B,)`` index within the context of the window containing the
        target position.

    Returns
    -------
    ``(B, 1)`` array; zero when the whole target window is missing.
    """
    batch = window_values.shape[0]
    rows = np.arange(batch)
    values = window_values[rows, target_window, :]
    avail = window_avail[rows, target_window, :]
    counts = avail.sum(axis=-1)
    sums = (values * avail).sum(axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
    return means[:, None]


def local_neighbourhood_signal(series_values: np.ndarray, series_avail: np.ndarray,
                               target_time: np.ndarray, radius: int = 5) -> np.ndarray:
    """Alternative fine-grained feature: masked mean of a ±radius neighbourhood.

    Not used by the default DeepMVI configuration (the paper uses the window
    mean) but exposed for experimentation; the extension benchmarks compare
    both variants.
    """
    batch, length = series_values.shape
    output = np.zeros((batch, 1))
    for row in range(batch):
        t = int(target_time[row])
        lo = max(0, t - radius)
        hi = min(length, t + radius + 1)
        avail = series_avail[row, lo:hi]
        values = series_values[row, lo:hi]
        count = avail.sum()
        output[row, 0] = (values * avail).sum() / count if count > 0 else 0.0
    return output
