"""repro-lint: AST-based checker for the project's correctness invariants.

The serving stack enforces a handful of invariants only by convention —
monotonic-clock deadline arithmetic, seeded randomness, ``with``-guarded
locks, single-``write()`` ``O_APPEND`` journal appends.  Each rule here
turns one of those conventions into a lint-time failure, so a regression
is caught in CI instead of a SIGKILL drill:

========  ==================  ==============================================
rule id   pragma alias        invariant
========  ==================  ==============================================
RL001     unseeded-random     no global ``np.random.*`` (use ``default_rng``
                              with a derived seed — determinism contract)
RL002     wall-clock          no ``time.time()`` (deadlines and latency
                              math must be monotonic; wall stamps need an
                              explicit pragma)
RL003     lock-discipline     every ``Lock.acquire()`` happens via ``with``
                              or inside ``try``/``finally: release()``
RL004     append-open         no append-mode ``open()``; journal appends
                              must be one ``os.write`` on an ``O_APPEND``
                              descriptor (:func:`repro.engine.cache.append_record_line`)
RL005     pickle              no ``pickle``/``allow_pickle=True`` outside
                              the guarded artifact codec
RL006     swallow             no bare ``except:`` / silent
                              ``except Exception`` (re-raise, log, or
                              capture the traceback)
RL007     model-ref           public ``repro.api`` surfaces take
                              :class:`~repro.api.refs.ModelRef`, not raw
                              ``model_id: str`` parameters
RL008     mutable-default     no mutable default argument values
RL009     no-print            no ``print()`` in ``repro`` library code
                              (CLI entry points — ``cli.py`` /
                              ``__main__.py`` — are exempt; use
                              :mod:`logging` so servers stay quiet)
========  ==================  ==============================================

Suppression is per line: a trailing (or immediately preceding whole-line)
comment ``# repro-lint: allow[<alias-or-rule-id>]`` silences the named
rules on that line, and a committed baseline
(``tools/repro_lint_baseline.json``) grandfathers pre-existing findings by
``(file, rule)`` count so the tool can gate *new* regressions while old
debt is paid down incrementally.

The linter is stdlib-only (``ast`` + ``tokenize``) on purpose: it runs in
every environment the test suite runs in, including fully offline ones.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "RULE_ALIASES",
    "collect_pragmas",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "baseline_counts",
]

PRAGMA_PATTERN = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]+)\]")

#: rule id -> short pragma alias (both forms are accepted in pragmas)
RULE_ALIASES: Dict[str, str] = {
    "RL001": "unseeded-random",
    "RL002": "wall-clock",
    "RL003": "lock-discipline",
    "RL004": "append-open",
    "RL005": "pickle",
    "RL006": "swallow",
    "RL007": "model-ref",
    "RL008": "mutable-default",
    "RL009": "no-print",
}

#: file names where ``print()`` IS the output channel (RL009 exempt)
_PRINT_ALLOWED_NAMES = ("cli.py", "__main__.py")

#: legacy ``np.random`` module-level functions that share global state or
#: hide their seed; the generator API is exempt.
_NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "Philox", "SFC64", "MT19937",
}

#: handler-body calls that count as "the error was reported, not swallowed"
_LOGGING_CALL_NAMES = {
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log", "print", "format_exc", "print_exc", "print_exception", "fail",
}

_PICKLE_MODULES = {"pickle", "cPickle", "dill", "shelve", "marshal"}

#: files allowed to touch pickle-adjacent codecs: the artifact codec owns
#: the untrusted-class guard (``load_imputer_bytes``)
_PICKLE_ALLOWED_SUFFIXES = ("repro/engine/artifacts.py",)

_MUTABLE_CTOR_NAMES = {
    "list", "dict", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter",
}


@dataclass
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    grandfathered: bool = False

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message, "hint": self.hint,
            "grandfathered": self.grandfathered,
        }


@dataclass
class LintReport:
    """Findings split into live failures and baseline-grandfathered ones."""

    findings: List[Finding] = field(default_factory=lambda: [])
    grandfathered: List[Finding] = field(default_factory=lambda: [])
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
        }


# ---------------------------------------------------------------------- #
# pragmas
# ---------------------------------------------------------------------- #
def collect_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of allowed tags from ``repro-lint`` comments.

    Only real comment tokens are considered (a pragma spelled inside a
    string literal is inert), via :mod:`tokenize`.  A pragma on its own
    line also covers the line directly below it, so long expressions can
    carry an annotation without exceeding the line width.
    """
    pragmas: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_PATTERN.search(token.string)
            if not match:
                continue
            tags = {tag.strip() for tag in match.group(1).split(",")
                    if tag.strip()}
            line = token.start[0]
            pragmas.setdefault(line, set()).update(tags)
            # a whole-line pragma comment annotates the next line too
            if token.line.strip().startswith("#"):
                pragmas.setdefault(line + 1, set()).update(tags)
    except tokenize.TokenError:
        pass  # syntactically broken file: the ast parse reports it
    return pragmas


def _suppressed(finding: Finding, pragmas: Dict[int, Set[str]]) -> bool:
    tags = pragmas.get(finding.line, set())
    alias = RULE_ALIASES.get(finding.rule, "")
    return bool(tags & {finding.rule, alias, "all"})


# ---------------------------------------------------------------------- #
# shared AST helpers
# ---------------------------------------------------------------------- #
def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _constant_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ---------------------------------------------------------------------- #
# the rules
# ---------------------------------------------------------------------- #
def _rule_rl001(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL001: no unseeded/global ``np.random.*`` usage."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (len(parts) >= 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_ALLOWED):
                yield Finding(
                    path, node.lineno, node.col_offset, "RL001",
                    f"global numpy RNG call {dotted}() breaks the "
                    "determinism contract (masks and batches must derive "
                    "from explicit seeds)",
                    hint="use np.random.default_rng(seed) — see the "
                         "fingerprint-derived mask seeds in "
                         "repro.engine.jobs (JobSpec.mask_seed)")
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("numpy.random", "np.random"):
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield Finding(
                            path, node.lineno, node.col_offset, "RL001",
                            f"importing {alias.name!r} from numpy.random "
                            "pulls in the global RNG",
                            hint="import default_rng and seed it "
                                 "explicitly")


def _rule_rl002(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL002: no wall-clock ``time.time()`` (monotonic required)."""
    wall_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    wall_aliases.add(alias.asname or alias.name)
                    yield Finding(
                        path, node.lineno, node.col_offset, "RL002",
                        "'from time import time' imports the wall clock; "
                        "deadline and latency arithmetic must be monotonic",
                        hint="use time.monotonic() or time.perf_counter(); "
                             "intentional wall stamps need "
                             "'# repro-lint: allow[wall-clock]'")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted == "time.time" or (dotted in wall_aliases and dotted):
            yield Finding(
                path, node.lineno, node.col_offset, "RL002",
                "wall-clock time.time() is not monotonic: NTP steps and "
                "DST make deadline/latency arithmetic go backwards",
                hint="use time.monotonic() (deadlines) or "
                     "time.perf_counter() (latency); journal wall stamps "
                     "carry '# repro-lint: allow[wall-clock]'")


def _rule_rl003(tree: ast.AST, path: str,
                parents: Dict[ast.AST, ast.AST]) -> Iterable[Finding]:
    """RL003: ``.acquire()`` only via ``with`` or try/finally release."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"):
            continue
        receiver = ast.dump(node.func.value)
        guarded = False
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            parent = parents.get(cursor)
            if isinstance(parent, ast.Try) and cursor in parent.body:
                for final_node in ast.walk(
                        ast.Module(body=list(parent.finalbody),
                                   type_ignores=[])):
                    if (isinstance(final_node, ast.Call)
                            and isinstance(final_node.func, ast.Attribute)
                            and final_node.func.attr == "release"
                            and ast.dump(final_node.func.value) == receiver):
                        guarded = True
                        break
            if guarded:
                break
            cursor = parent
        if not guarded:
            yield Finding(
                path, node.lineno, node.col_offset, "RL003",
                "bare .acquire() without a matching try/finally release: "
                "an exception between acquire and release deadlocks every "
                "other thread",
                hint="prefer 'with lock:'; if acquire needs a timeout, "
                     "wrap the guarded region in try/finally: "
                     "lock.release()")


def _looks_like_mode(text: Optional[str]) -> bool:
    """True for strings that are plausibly an ``open()`` mode ("a", "ab+")."""
    return (text is not None and 0 < len(text) <= 3
            and all(char in "rwxabt+U" for char in text))


def _rule_rl004(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL004: no append-mode ``open()``; journals append via O_APPEND."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        mode: Optional[str] = None
        is_open = False
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            is_open = True
            if len(node.args) >= 2:
                mode = _constant_str(node.args[1])
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "open":
            is_open = True
            if node.args:
                mode = _constant_str(node.args[0])
        if not is_open:
            continue
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = _constant_str(keyword.value)
        if _looks_like_mode(mode) and "a" in mode and "r" not in mode:
            yield Finding(
                path, node.lineno, node.col_offset, "RL004",
                f"append-mode open(mode={mode!r}): buffered appends can "
                "tear records across processes and survive SIGKILL "
                "half-written",
                hint="append exactly one os.write() of a complete line on "
                     "an os.O_APPEND descriptor — use "
                     "repro.engine.cache.append_record_line "
                     "(the ResultCache.put discipline)")


def _rule_rl005(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL005: pickle only inside the guarded artifact codec."""
    if Path(path).as_posix().endswith(_PICKLE_ALLOWED_SUFFIXES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _PICKLE_MODULES:
                    yield Finding(
                        path, node.lineno, node.col_offset, "RL005",
                        f"import of {alias.name!r}: pickle deserialisation "
                        "executes arbitrary callables from the wire",
                        hint="artifact blobs go through "
                             "repro.engine.artifacts.load_imputer_bytes, "
                             "which guards the class allowlist")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _PICKLE_MODULES:
                yield Finding(
                    path, node.lineno, node.col_offset, "RL005",
                    f"import from {node.module!r}: pickle deserialisation "
                    "executes arbitrary callables from the wire",
                    hint="route blobs through the guarded artifact codec")
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func) or ""
            parts = dotted.split(".")
            if parts[0] in _PICKLE_MODULES and len(parts) > 1:
                yield Finding(
                    path, node.lineno, node.col_offset, "RL005",
                    f"{dotted}() on a wire path: pickle executes "
                    "arbitrary callables during load",
                    hint="route blobs through the guarded artifact codec")
            for keyword in node.keywords:
                if (keyword.arg == "allow_pickle"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    yield Finding(
                        path, node.lineno, node.col_offset, "RL005",
                        "allow_pickle=True turns np.load into a pickle "
                        "loader",
                        hint="keep allow_pickle=False; structured blobs "
                             "belong in the artifact codec")


def _handler_is_silent(handler: ast.excepthandler) -> bool:
    """True when the handler neither re-raises, logs, nor uses the error."""
    bound = handler.name
    for node in ast.walk(ast.Module(body=list(handler.body),
                                    type_ignores=[])):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name in _LOGGING_CALL_NAMES:
                return False
        if bound and isinstance(node, ast.Name) and node.id == bound \
                and isinstance(node.ctx, ast.Load):
            # the bound exception is *used* (wrapped, stored, attached)
            return False
    return True


def _rule_rl006(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL006: no silently-swallowed broad exception handlers."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = node.type is None
        if isinstance(node.type, ast.Name) and \
                node.type.id in ("Exception", "BaseException"):
            broad = True
        if isinstance(node.type, ast.Tuple):
            broad = any(isinstance(element, ast.Name)
                        and element.id in ("Exception", "BaseException")
                        for element in node.type.elts)
        if not broad:
            continue
        if _handler_is_silent(node):
            what = "bare except:" if node.type is None \
                else "except Exception"
            yield Finding(
                path, node.lineno, node.col_offset, "RL006",
                f"{what} swallows the error without re-raising, logging, "
                "or using the bound exception — failures vanish silently",
                hint="re-raise, log it, capture traceback.format_exc() "
                     "into the result, or annotate why suppression is "
                     "safe with '# repro-lint: allow[swallow]'")


def _rule_rl007(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL007: public ``repro.api`` surfaces accept ModelRef, not raw str."""
    posix = Path(path).as_posix()
    if "repro/api/" not in posix:
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        args = list(node.args.posonlyargs) + list(node.args.args) \
            + list(node.args.kwonlyargs)
        for arg in args:
            if arg.arg != "model_id":
                continue
            annotation = arg.annotation
            if annotation is None:
                continue
            rendered = ast.unparse(annotation)
            if "str" in rendered and "ModelRef" not in rendered:
                yield Finding(
                    path, node.lineno, node.col_offset, "RL007",
                    f"public api surface {node.name}() takes raw "
                    f"'model_id: {rendered}'; post-PR-8 surfaces accept "
                    "ModelRef ('model_id@version', bare string = @latest)",
                    hint="annotate the parameter to accept "
                         "repro.api.refs.ModelRef (coerce with "
                         "ModelRef.coerce); raw str ids are store-level "
                         "only")


def _rule_rl008(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL008: no mutable default argument values."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults
            if default is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if isinstance(default, ast.Call):
                dotted = _dotted_name(default.func) or ""
                mutable = dotted.split(".")[-1] in _MUTABLE_CTOR_NAMES
            if mutable:
                name = getattr(node, "name", "<lambda>")
                yield Finding(
                    path, default.lineno, default.col_offset, "RL008",
                    f"mutable default argument in {name}(): the object is "
                    "shared across every call",
                    hint="default to None and construct inside the body "
                         "(or use dataclasses.field(default_factory=...))")


def _rule_rl009(tree: ast.AST, path: str) -> Iterable[Finding]:
    """RL009: no ``print()`` in library code (CLI modules exempt)."""
    posix = Path(path).as_posix()
    if "repro/" not in posix:
        return
    if Path(path).name in _PRINT_ALLOWED_NAMES:
        return
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield Finding(
                path, node.lineno, node.col_offset, "RL009",
                "print() in library code writes to the server's stdout: "
                "it interleaves with worker output, ignores log levels, "
                "and cannot be silenced by embedders",
                hint="use logging.getLogger(__name__) (debug/info); "
                     "print() belongs only in cli.py / __main__.py entry "
                     "points")


#: rule id -> implementation; RL003 additionally receives the parent map
RULES = {
    "RL001": _rule_rl001,
    "RL002": _rule_rl002,
    "RL003": _rule_rl003,
    "RL004": _rule_rl004,
    "RL005": _rule_rl005,
    "RL006": _rule_rl006,
    "RL007": _rule_rl007,
    "RL008": _rule_rl008,
    "RL009": _rule_rl009,
}


# ---------------------------------------------------------------------- #
# driver
# ---------------------------------------------------------------------- #
def lint_source(source: str, path: str,
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string; returns pragma-filtered findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "RL000",
                        f"syntax error: {exc.msg}")]
    pragmas = collect_pragmas(source)
    parents = _parent_map(tree)
    findings: List[Finding] = []
    for rule_id in (rules or sorted(RULES)):
        rule = RULES[rule_id]
        if rule_id == "RL003":
            produced = rule(tree, path, parents)
        else:
            produced = rule(tree, path)
        for finding in produced:
            if not _suppressed(finding, pragmas):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path, rules: Optional[Sequence[str]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, str(path), rules=rules)


def iter_python_files(paths: Sequence) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(
                candidate for candidate in entry.rglob("*.py")
                if "__pycache__" not in candidate.parts))
        elif entry.suffix == ".py":
            files.append(entry)
    return files


def load_baseline(path) -> Dict[str, int]:
    """Grandfathered ``"file::rule" -> count`` allowances, or ``{}``."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    entries = payload.get("findings", payload)
    return {str(key): int(value) for key, value in entries.items()
            if not str(key).startswith("_")}


def baseline_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = f"{Path(finding.path).as_posix()}::{finding.rule}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def _baseline_key_for(finding: Finding,
                      remaining: Dict[str, int]) -> Optional[str]:
    """The baseline key covering ``finding``, or ``None``.

    Keys are stored repo-relative; findings may carry absolute paths (the
    test suite lints by absolute fixture path), so a key also matches any
    finding path that ends with it on a ``/`` boundary.
    """
    posix = Path(finding.path).as_posix()
    exact = f"{posix}::{finding.rule}"
    if remaining.get(exact, 0) > 0:
        return exact
    for candidate, allowance in remaining.items():
        if allowance <= 0:
            continue
        file_part, _, rule_part = candidate.rpartition("::")
        if rule_part != finding.rule:
            continue
        if posix == file_part or posix.endswith("/" + file_part):
            return candidate
    return None


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, int]) -> Tuple[List[Finding],
                                                      List[Finding]]:
    """Split findings into (live, grandfathered) under per-key allowances.

    For each ``file::rule`` key the first ``baseline[key]`` findings (in
    line order) are grandfathered; everything past the allowance is live.
    """
    remaining = dict(baseline)
    live: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = _baseline_key_for(finding, remaining)
        if key is not None:
            remaining[key] -= 1
            finding.grandfathered = True
            grandfathered.append(finding)
        else:
            live.append(finding)
    return live, grandfathered


def lint_paths(paths: Sequence, baseline: Optional[Dict[str, int]] = None,
               rules: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every ``*.py`` under ``paths``; apply the baseline if given."""
    report = LintReport()
    all_findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        all_findings.extend(lint_file(file_path, rules=rules))
        report.files_checked += 1
    live, grandfathered = apply_baseline(all_findings, baseline or {})
    report.findings = live
    report.grandfathered = grandfathered
    return report
