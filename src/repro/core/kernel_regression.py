"""Kernel regression over sibling series (Section 4.2 of the paper).

For a target cell ``(k, t)`` and each member dimension ``i`` the module
collects the *siblings* — all series that share every member index with the
target except the ``i``-th — and summarises their values at time ``t`` with

* ``U``: an RBF-kernel-weighted mean, where the kernel compares *learned
  embeddings* of the dimension members (Eqns. 17–18),
* ``W``: the total available kernel weight (Eqn. 19),
* ``V``: the plain variance of the sibling values (Eqn. 20).

The concatenation ``[U_i, V_i, W_i]`` over dimensions (Eqn. 21) is the
cross-series signal ``hkr`` fed to the output layer.  Only ``U`` and ``W``
depend on the embeddings and therefore carry gradients.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Embedding, Module
from repro.nn.tensor import Tensor


class KernelRegression(Module):
    """Learned-embedding kernel regression across sibling series.

    Parameters
    ----------
    dimension_sizes:
        Number of members of each non-time dimension.
    embedding_dim:
        Size of each member embedding (``d_i`` in the paper, default 10).
    gamma:
        RBF kernel bandwidth.
    top_l:
        When a dimension has more than ``top_l`` siblings, only the
        ``top_l`` most similar (by current kernel value) are used — the
        paper's pre-selection trick for large dimensions.
    """

    def __init__(self, dimension_sizes: Sequence[int], embedding_dim: int = 10,
                 gamma: float = 1.0, top_l: int = 50,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dimension_sizes = list(dimension_sizes)
        self.embedding_dim = embedding_dim
        self.gamma = gamma
        self.top_l = top_l
        self.embeddings = [
            Embedding(size, embedding_dim, rng=rng) for size in self.dimension_sizes
        ]

    # ------------------------------------------------------------------ #
    @property
    def output_dim(self) -> int:
        """Three features (U, V, W) per member dimension."""
        return 3 * len(self.dimension_sizes)

    def kernel_matrix(self, dim: int) -> np.ndarray:
        """Pairwise kernel values between all members of dimension ``dim``.

        Evaluated without gradients — useful for inspection and for the
        top-L pre-selection.
        """
        weights = self.embeddings[dim].weight.data
        sq_dist = ((weights[:, None, :] - weights[None, :, :]) ** 2).sum(axis=-1)
        return np.exp(-self.gamma * sq_dist)

    def forward(self, member_indices: np.ndarray,
                sibling_member_indices: List[np.ndarray],
                sibling_values: List[np.ndarray],
                sibling_avail: List[np.ndarray]) -> Tensor:
        """Compute ``hkr`` for a batch of targets.

        Parameters
        ----------
        member_indices:
            ``(B, n_dims)`` member index of the target along each dimension.
        sibling_member_indices / sibling_values / sibling_avail:
            One entry per dimension, each ``(B, S_i)``: the member indices of
            the siblings along that dimension, their values at the target
            time, and their availability (0/1).  ``S_i`` may be zero for a
            singleton dimension.

        Returns
        -------
        Tensor of shape ``(B, 3 * n_dims)``.
        """
        batch = member_indices.shape[0]
        features: List[Tensor] = []
        for dim, size in enumerate(self.dimension_sizes):
            siblings = sibling_member_indices[dim]
            values = sibling_values[dim]
            avail = sibling_avail[dim]
            if siblings.shape[1] == 0:
                zero = Tensor(np.zeros((batch, 3)))
                features.append(zero)
                continue

            siblings, values, avail = self._preselect(
                dim, member_indices[:, dim], siblings, values, avail)

            target_emb = self.embeddings[dim](member_indices[:, dim])      # (B, d)
            sibling_emb = self.embeddings[dim](siblings)                    # (B, S, d)
            diff = sibling_emb - target_emb.reshape(batch, 1, self.embedding_dim)
            sq_dist = (diff * diff).sum(axis=-1)                            # (B, S)
            kernel = (sq_dist * (-self.gamma)).exp()                        # Eqn. 17

            avail_t = Tensor(avail)
            values_t = Tensor(values)
            weighted = kernel * avail_t
            weight_sum = weighted.sum(axis=-1)                              # Eqn. 19 (W)
            numerator = (weighted * values_t).sum(axis=-1)
            u = numerator / (weight_sum + 1e-8)                             # Eqn. 18 (U)
            variance = Tensor(self._masked_variance(values, avail))         # Eqn. 20 (V)
            # Keep the weight feature O(1) regardless of the dimension size so
            # the zero-initialised output layer sees comparable feature scales.
            weight_mean = weight_sum * (1.0 / siblings.shape[1])

            features.append(F.stack([u, variance, weight_mean], axis=-1))   # (B, 3)
        return F.concatenate(features, axis=-1)                             # Eqn. 21

    # ------------------------------------------------------------------ #
    def _preselect(self, dim: int, target_members: np.ndarray,
                   siblings: np.ndarray, values: np.ndarray,
                   avail: np.ndarray):
        """Keep only the ``top_l`` most similar siblings (no gradient)."""
        n_siblings = siblings.shape[1]
        if n_siblings <= self.top_l:
            return siblings, values, avail
        kernel = self.kernel_matrix(dim)
        similarity = kernel[target_members[:, None], siblings]              # (B, S)
        order = np.argsort(-similarity, axis=1)[:, : self.top_l]
        rows = np.arange(siblings.shape[0])[:, None]
        return siblings[rows, order], values[rows, order], avail[rows, order]

    @staticmethod
    def _masked_variance(values: np.ndarray, avail: np.ndarray) -> np.ndarray:
        """Variance of the available sibling values (0 when fewer than 2)."""
        counts = avail.sum(axis=-1)
        sums = (values * avail).sum(axis=-1)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        centred = (values - means[:, None]) * avail
        var = np.where(counts > 1,
                       (centred ** 2).sum(axis=-1) / np.maximum(counts, 1.0),
                       0.0)
        return var
