"""Artifact round-trips and the imputer serialisation protocol."""

import numpy as np
import pytest

from repro.baselines.simple import MeanImputer
from repro.baselines.svd import SVDImputer
from repro.core.config import DeepMVIConfig
from repro.core.imputer import DeepMVIImputer
from repro.data.missing import MissingScenario, apply_scenario
from repro.engine.artifacts import load_imputer, save_imputer
from repro.exceptions import NotFittedError


@pytest.fixture
def incomplete(small_panel):
    scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5,
                                        "block_size": 5})
    tensor, _ = apply_scenario(small_panel, scenario, seed=3)
    return tensor


class TestBaseProtocol:
    def test_get_set_state_round_trip(self, incomplete):
        imputer = SVDImputer(rank=2).fit(incomplete)
        restored = SVDImputer.__new__(SVDImputer)
        restored.set_state(imputer.get_state())
        np.testing.assert_array_equal(restored.impute().values,
                                      imputer.impute().values)

    def test_state_is_a_deep_copy(self, incomplete):
        imputer = MeanImputer().fit(incomplete)
        state = imputer.get_state()
        state["_fitted_tensor"].values[:] = 0.0
        assert np.nanmax(np.abs(imputer._fitted_tensor.values)) > 0

    def test_clone_is_unfitted_with_same_config(self, incomplete):
        imputer = SVDImputer(rank=2).fit(incomplete)
        clone = imputer.clone()
        assert clone.rank == 2
        with pytest.raises(NotFittedError):
            clone.impute()


class TestMatrixArtifacts:
    def test_fitted_svd_round_trip(self, incomplete, tmp_path):
        imputer = SVDImputer(rank=2).fit(incomplete)
        save_imputer(imputer, tmp_path / "svd")
        restored = load_imputer(tmp_path / "svd")
        assert isinstance(restored, SVDImputer)
        np.testing.assert_array_equal(restored.impute().values,
                                      imputer.impute().values)

    def test_unfitted_imputer_round_trip(self, tmp_path):
        save_imputer(SVDImputer(rank=4), tmp_path / "svd")
        assert load_imputer(tmp_path / "svd").rank == 4


class TestDeepMVIArtifacts:
    @pytest.fixture(scope="class")
    def fitted(self):
        # Same panel as the function-scoped ``small_panel`` fixture, built
        # here directly so one training run serves the whole class.
        from repro.data.datasets import load_dataset
        panel = load_dataset("airq", size="tiny", seed=7, length=120, shape=(8,))
        scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5,
                                            "block_size": 5})
        tensor, _ = apply_scenario(panel, scenario, seed=3)
        imputer = DeepMVIImputer(config=DeepMVIConfig.fast())
        imputer.fit(tensor)
        return imputer, tensor

    def test_state_dict_survives_save_load(self, fitted, tmp_path):
        imputer, _ = fitted
        save_imputer(imputer, tmp_path / "deepmvi")
        restored = load_imputer(tmp_path / "deepmvi")
        original_state = imputer.model.state_dict()
        restored_state = restored.model.state_dict()
        assert original_state.keys() == restored_state.keys()
        for key in original_state:
            np.testing.assert_array_equal(original_state[key],
                                          restored_state[key])
        assert restored.config == imputer.config

    def test_imputations_identical_after_reload(self, fitted, tmp_path):
        imputer, _ = fitted
        save_imputer(imputer, tmp_path / "deepmvi")
        restored = load_imputer(tmp_path / "deepmvi")
        np.testing.assert_array_equal(restored.impute().values,
                                      imputer.impute().values)

    def test_train_once_impute_many(self, fitted, small_panel, tmp_path):
        """A model fitted on one scenario imputes other scenarios of the
        same dataset after a save/load round trip."""
        imputer, _ = fitted
        save_imputer(imputer, tmp_path / "deepmvi")
        restored = load_imputer(tmp_path / "deepmvi")
        blackout, _ = apply_scenario(
            small_panel, MissingScenario("blackout", {"block_size": 5}), seed=1)
        np.testing.assert_array_equal(restored.impute(blackout).values,
                                      imputer.impute(blackout).values)

    def test_impute_other_tensor_keeps_fitted_state(self, fitted, small_panel):
        """Satellite fix: imputing a second tensor must not corrupt the
        fitted context for subsequent no-argument impute() calls."""
        imputer, fitted_tensor = fitted
        baseline = imputer.impute().values.copy()
        blackout, _ = apply_scenario(
            small_panel, MissingScenario("blackout", {"block_size": 5}), seed=1)
        imputer.impute(blackout)
        assert imputer._fitted_tensor is fitted_tensor
        np.testing.assert_array_equal(imputer.impute().values, baseline)

    def test_clone_resets_model_and_context(self, fitted):
        imputer, _ = fitted
        clone = imputer.clone()
        assert clone.model is None and clone.context is None
        assert clone.history is None and clone._fitted_tensor is None
        assert clone.config == imputer.config
        with pytest.raises(NotFittedError):
            clone.impute()


class TestArtifactErrors:
    def test_unsupported_state_raises_type_error(self, tmp_path):
        class Weird(MeanImputer):
            pass

        weird = Weird()
        weird.gadget = object()
        with pytest.raises(TypeError, match="cannot serialise"):
            save_imputer(weird, tmp_path / "weird")

    def test_unknown_format_rejected(self, incomplete, tmp_path):
        save_imputer(MeanImputer().fit(incomplete), tmp_path / "m")
        manifest = tmp_path / "m" / "manifest.json"
        manifest.write_text(manifest.read_text().replace(
            '"format": 1', '"format": 99'))
        with pytest.raises(ValueError, match="unsupported artifact format"):
            load_imputer(tmp_path / "m")


class TestNetworkBaselineClone:
    def test_clone_of_fitted_network_baseline_is_unfitted(self, incomplete):
        """Regression: clone() must clear trained networks and cached
        matrices, not just _fitted_tensor."""
        from repro.baselines.brits import BRITSImputer

        imputer = BRITSImputer(hidden_dim=4, crop_length=8, n_epochs=1)
        imputer.fit(incomplete)
        clone = imputer.clone()
        assert clone.network is None and clone._matrix is None
        with pytest.raises(NotFittedError):
            clone.impute()
        # ...but it can be fitted from scratch like a fresh instance.
        assert clone.fit_impute(incomplete).mask.all()
