"""A small reverse-mode automatic-differentiation engine on top of numpy.

This package is the deep-learning substrate for the repro library.  The
paper implements DeepMVI with an off-the-shelf framework; this environment
has no deep-learning framework installed, so we provide the minimal set of
pieces the paper's models need:

* :class:`repro.nn.tensor.Tensor` — an array with a gradient tape.
* :mod:`repro.nn.functional` — differentiable operations.
* :mod:`repro.nn.layers` — ``Module``, ``Linear``, ``Embedding``, ... .
* :mod:`repro.nn.attention` — multi-head attention used by the temporal
  transformer and the vanilla transformer baseline.
* :mod:`repro.nn.rnn` — a GRU cell used by the BRITS and MRNN baselines.
* :mod:`repro.nn.optim` — SGD and Adam.
* :mod:`repro.nn.losses` — MSE / MAE / Gaussian negative log likelihood.
"""

from repro.nn.tensor import Tensor, as_tensor, no_grad
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Parameter,
    Linear,
    Embedding,
    Sequential,
    ReLU,
    Tanh,
    Sigmoid,
    Dropout,
    LayerNorm,
)
from repro.nn.attention import MultiHeadAttention
from repro.nn.rnn import GRUCell
from repro.nn.optim import SGD, Adam
from repro.nn import losses
from repro.nn import init

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "LayerNorm",
    "MultiHeadAttention",
    "GRUCell",
    "SGD",
    "Adam",
    "losses",
    "init",
]
