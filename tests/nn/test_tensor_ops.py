"""Gradient correctness of every elementary Tensor operation.

Each test compares the analytic gradient produced by backward() with a
central-difference numerical gradient.
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.nn.utils import numerical_gradient


def _check_unary(op, x, tol=1e-5):
    """Compare analytic and numerical gradients of a scalar-reduced unary op."""
    tensor = Tensor(x, requires_grad=True)
    out = op(tensor).sum()
    out.backward()
    numeric = numerical_gradient(lambda arr: float(op(Tensor(arr)).sum().item()), x)
    np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=1e-4)


def _check_binary(op, x, y, tol=1e-5):
    tx = Tensor(x, requires_grad=True)
    ty = Tensor(y, requires_grad=True)
    out = op(tx, ty).sum()
    out.backward()
    numeric_x = numerical_gradient(
        lambda arr: float(op(Tensor(arr), Tensor(y)).sum().item()), x)
    numeric_y = numerical_gradient(
        lambda arr: float(op(Tensor(x), Tensor(arr)).sum().item()), y)
    np.testing.assert_allclose(tx.grad, numeric_x, atol=tol, rtol=1e-4)
    np.testing.assert_allclose(ty.grad, numeric_y, atol=tol, rtol=1e-4)


class TestArithmetic:
    def test_add_gradient(self, rng):
        _check_binary(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_add_broadcast_gradient(self, rng):
        _check_binary(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_sub_gradient(self, rng):
        _check_binary(lambda a, b: a - b, rng.normal(size=(2, 5)), rng.normal(size=(2, 5)))

    def test_rsub_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 - x).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_mul_gradient(self, rng):
        _check_binary(lambda a, b: a * b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_mul_broadcast_scalar_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        tensor = Tensor(x, requires_grad=True)
        out = (tensor * 2.5).sum()
        out.backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(x, 2.5))

    def test_div_gradient(self, rng):
        _check_binary(lambda a, b: a / b,
                      rng.normal(size=(3, 3)),
                      rng.uniform(0.5, 2.0, size=(3, 3)))

    def test_rtruediv(self):
        x = Tensor([2.0, 4.0], requires_grad=True)
        out = (1.0 / x).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [-0.25, -1.0 / 16.0])

    def test_pow_gradient(self, rng):
        _check_unary(lambda a: a ** 3, rng.uniform(0.5, 2.0, size=(4,)))

    def test_neg_gradient(self, rng):
        _check_unary(lambda a: -a, rng.normal(size=(3, 2)))

    def test_matmul_2d_gradient(self, rng):
        _check_binary(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_matmul_batched_gradient(self, rng):
        _check_binary(lambda a, b: a @ b,
                      rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 2)))

    def test_matmul_broadcast_gradient(self, rng):
        # (B, 1, 1, p) @ (w, p, q) -> (B, w, 1, q): the pattern used by the
        # temporal transformer's per-offset decoder.
        _check_binary(lambda a, b: a @ b,
                      rng.normal(size=(2, 1, 1, 3)), rng.normal(size=(4, 3, 2)))

    def test_matmul_vector_gradient(self, rng):
        _check_binary(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))


class TestElementwiseFunctions:
    def test_exp_gradient(self, rng):
        _check_unary(lambda a: a.exp(), rng.normal(size=(3, 3)))

    def test_log_gradient(self, rng):
        _check_unary(lambda a: a.log(), rng.uniform(0.5, 3.0, size=(4,)))

    def test_sqrt_gradient(self, rng):
        _check_unary(lambda a: a.sqrt(), rng.uniform(0.5, 3.0, size=(4,)))

    def test_abs_gradient(self, rng):
        _check_unary(lambda a: a.abs(), rng.normal(size=(5,)) + 0.5)

    def test_relu_gradient(self, rng):
        x = rng.normal(size=(10,))
        x[np.abs(x) < 0.1] += 0.3  # stay away from the kink
        _check_unary(lambda a: a.relu(), x)

    def test_relu_zeroes_negative(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_gradient(self, rng):
        _check_unary(lambda a: a.sigmoid(), rng.normal(size=(6,)))

    def test_tanh_gradient(self, rng):
        _check_unary(lambda a: a.tanh(), rng.normal(size=(6,)))

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.normal(size=(100,)) * 10).sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)


class TestReductionsAndShapes:
    def test_sum_all_gradient(self, rng):
        _check_unary(lambda a: a.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis_gradient(self, rng):
        _check_unary(lambda a: a.sum(axis=1), rng.normal(size=(3, 4)))

    def test_sum_keepdims_gradient(self, rng):
        _check_unary(lambda a: a.sum(axis=0, keepdims=True), rng.normal(size=(3, 4)))

    def test_mean_all_gradient(self, rng):
        _check_unary(lambda a: a.mean(), rng.normal(size=(2, 5)))

    def test_mean_axis_gradient(self, rng):
        _check_unary(lambda a: a.mean(axis=-1), rng.normal(size=(2, 5)))

    def test_mean_value(self):
        assert Tensor([[1.0, 3.0], [5.0, 7.0]]).mean().item() == pytest.approx(4.0)

    def test_reshape_gradient(self, rng):
        _check_unary(lambda a: (a.reshape(6) * np.arange(6)).sum(),
                     rng.normal(size=(2, 3)))

    def test_transpose_gradient(self, rng):
        _check_unary(lambda a: (a.transpose() * np.arange(6).reshape(3, 2)).sum(),
                     rng.normal(size=(2, 3)))

    def test_transpose_axes_gradient(self, rng):
        weights = np.arange(24).reshape(3, 4, 2)
        _check_unary(lambda a: (a.transpose(1, 2, 0) * weights).sum(),
                     rng.normal(size=(2, 3, 4)))

    def test_swapaxes_gradient(self, rng):
        weights = np.arange(12).reshape(2, 3, 2)
        _check_unary(lambda a: (a.swapaxes(1, 2) * weights).sum(),
                     rng.normal(size=(2, 2, 3)))

    def test_getitem_slice_gradient(self, rng):
        _check_unary(lambda a: a[:, 1:3].sum(), rng.normal(size=(3, 5)))

    def test_getitem_fancy_gradient(self, rng):
        index = np.array([0, 2, 2])
        x = rng.normal(size=(3, 4))
        tensor = Tensor(x, requires_grad=True)
        out = tensor[index].sum()
        out.backward()
        expected = np.zeros_like(x)
        expected[0] += 1
        expected[2] += 2
        np.testing.assert_allclose(tensor.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        out = x[np.array([1, 1, 1])].sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [0, 3, 0, 0])
