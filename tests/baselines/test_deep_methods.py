"""Behavioural tests of the deep-learning baselines and the registry."""

import numpy as np
import pytest

from repro.baselines.brits import BRITSImputer
from repro.baselines.gpvae import GPVAEImputer, _temporal_smoothing_matrix
from repro.baselines.mrnn import MRNNImputer
from repro.baselines.registry import get_registry, list_methods, register_imputer
from repro.baselines.simple import MeanImputer
from repro.baselines.transformer import TransformerImputer
from repro.core.imputer import DeepMVIImputer
from repro.data.missing import MissingScenario, apply_scenario
from repro.data.synthetic import generate_correlated_groups
from repro.evaluation.metrics import mae
from repro.exceptions import ConfigError, NotFittedError


@pytest.fixture(scope="module")
def deep_task():
    panel = generate_correlated_groups(2, 4, 120, seed=6, noise_std=0.1)
    panel.name = "deep"
    scenario = MissingScenario("mcar", {"incomplete_fraction": 1.0, "block_size": 5})
    incomplete, mask = apply_scenario(panel, scenario, seed=7)
    return panel, incomplete, mask


class TestBRITS:
    def test_impute_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BRITSImputer().impute()

    def test_training_improves_over_untrained(self, deep_task):
        truth, incomplete, mask = deep_task
        untrained = BRITSImputer(n_epochs=0, hidden_dim=8, crop_length=24)
        trained = BRITSImputer(n_epochs=20, hidden_dim=8, crop_length=24, seed=0)
        error_untrained = mae(untrained.fit_impute(incomplete), truth, mask)
        error_trained = mae(trained.fit_impute(incomplete), truth, mask)
        assert error_trained < error_untrained

    def test_handles_series_longer_than_crop(self, deep_task):
        truth, incomplete, _ = deep_task
        imputer = BRITSImputer(n_epochs=1, hidden_dim=4, crop_length=16)
        completed = imputer.fit_impute(incomplete)
        assert completed.missing_fraction == 0.0


class TestGPVAE:
    def test_smoothing_matrix_rows_sum_to_one(self):
        smoothing = _temporal_smoothing_matrix(20, length_scale=3.0)
        np.testing.assert_allclose(smoothing.sum(axis=1), np.ones(20), atol=1e-12)

    def test_smoothing_matrix_favours_nearby_steps(self):
        smoothing = _temporal_smoothing_matrix(20, length_scale=3.0)
        assert smoothing[10, 10] > smoothing[10, 15]

    def test_fit_impute_runs(self, deep_task):
        truth, incomplete, mask = deep_task
        imputer = GPVAEImputer(n_epochs=10, latent_dim=4, hidden_dim=8, crop_length=40)
        completed = imputer.fit_impute(incomplete)
        assert mae(completed, truth, mask) < 2.0

    def test_impute_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GPVAEImputer().impute()


class TestTransformerBaseline:
    def test_fit_impute_runs(self, deep_task):
        truth, incomplete, mask = deep_task
        imputer = TransformerImputer(n_epochs=5, model_dim=8, crop_length=48)
        completed = imputer.fit_impute(incomplete)
        assert completed.missing_fraction == 0.0

    def test_training_improves_over_untrained(self, deep_task):
        truth, incomplete, mask = deep_task
        untrained = TransformerImputer(n_epochs=0, model_dim=8, crop_length=48)
        trained = TransformerImputer(n_epochs=30, model_dim=8, crop_length=48, seed=0)
        assert (mae(trained.fit_impute(incomplete), truth, mask)
                < mae(untrained.fit_impute(incomplete), truth, mask))

    def test_impute_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TransformerImputer().impute()


class TestMRNN:
    def test_fit_impute_runs(self, deep_task):
        truth, incomplete, mask = deep_task
        imputer = MRNNImputer(n_epochs=2, hidden_dim=4, crop_length=16, batch_size=2)
        completed = imputer.fit_impute(incomplete)
        assert completed.missing_fraction == 0.0
        assert mae(completed, truth, mask) < 3.0


class TestRegistry:
    def test_all_paper_methods_listed(self):
        methods = list_methods()
        for name in ["cdrec", "dynammo", "trmf", "svdimp", "stmvl", "tkcm",
                     "brits", "mrnn", "gpvae", "transformer", "deepmvi", "deepmvi1d"]:
            assert name in methods

    def test_create_by_name_returns_right_class(self):
        assert isinstance(get_registry().create("mean"), MeanImputer)
        assert isinstance(get_registry().create("brits", n_epochs=1), BRITSImputer)

    def test_create_deepmvi_lazily(self):
        imputer = get_registry().create("deepmvi")
        assert isinstance(imputer, DeepMVIImputer)

    def test_create_deepmvi1d_sets_flatten_flag(self):
        imputer = get_registry().create("deepmvi1d")
        assert imputer.config.flatten_dimensions

    def test_deepmvi_kwargs_become_config(self):
        imputer = get_registry().create("deepmvi", n_filters=8, window=5)
        assert imputer.config.n_filters == 8
        assert imputer.config.window == 5

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            get_registry().create("quantum-imputer")

    def test_register_custom_method(self):
        @register_imputer("custom-mean", tags=("custom",), overwrite=True)
        class Custom(MeanImputer):
            name = "Custom"

        assert isinstance(get_registry().create("custom-mean"), Custom)
        assert "custom-mean" in list_methods()
