"""Online drift recovery: frozen model vs the closed control loop.

The online subsystem's claim is that a drift-triggered refit + canary
rollout recovers imputation quality after a regime change, while leaving
undrifted traffic untouched.  This benchmark replays the *same* drifting
stream (a level shift injected halfway through a real dataset's
timeline) through two arms that start from the same fitted model:

* **static** — the model is frozen; every window is served by the
  version fitted on pre-drift data.
* **online** — :class:`~repro.online.OnlineLoop` watches the stream:
  probe scoring trips the drift budget, a warm-start refit registers the
  next version, the canary shadow-serves it and promotes on the SLO.

Both arms are scored on identical deterministic probe cells (same
stream id, seed and window indices → same hidden mask), so the gap is
attributable to the loop alone.  Reported metrics:
``online.drift_gain`` (post-drift NRMSE ratio static/online, gated —
the loop must keep beating the frozen model), ``online.exactly_once``
(1.0 iff the version journal holds each lifecycle transition exactly
once, gated at face value), plus ungated windows/sec and lifecycle
counters for trajectory tracking.

Results land in ``benchmarks/results/online.{txt,json}``; full mode
also refreshes the repo-root ``BENCH_online.json`` trajectory artifact.
The CI bench-regression job re-runs this file in fast mode and gates
the two metrics against ``benchmarks/baselines/online_fast.json`` via
``benchmarks/check_regression.py``.
"""

import json
import pathlib
import time
import warnings

import numpy as np

from repro.api.refs import ModelRef
from repro.api.requests import ImputeRequest
from repro.data.missing import MissingScenario, apply_scenario
from repro.data.tensor import TimeSeriesTensor
from repro.evaluation.metrics import nrmse
from repro.online import CanaryConfig, DriftConfig, DriftDetector, OnlineLoop
from repro.streaming import StreamingService, WindowedStream

from benchmarks._harness import bench_dataset, emit, is_fast

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

SCENARIO = MissingScenario("mcar", {"incomplete_fraction": 0.3,
                                    "block_size": 4})
SHIFT_SIGMA = 6.0
METHOD = "fitted-mean"

if is_fast():
    WINDOW = 16
else:
    WINDOW = 24

DRIFT_CONFIG = DriftConfig(nrmse_budget=2.0, rolling_windows=2,
                           baseline_windows=2, cooldown_windows=2, seed=0)
CANARY_CONFIG = CanaryConfig(min_shadow_samples=1, max_shadow_windows=8)


def make_drifting_stream():
    """A real dataset with a level shift injected at mid-timeline."""
    truth = bench_dataset("airq", seed=0)
    incomplete, _ = apply_scenario(truth, SCENARIO, seed=0)
    _, observed_std = incomplete.observed_mean_std()
    half = incomplete.n_time // 2
    values = incomplete.values.copy()
    values[..., half:] += SHIFT_SIGMA * (observed_std or 1.0)
    drifting = TimeSeriesTensor(values=values,
                                dimensions=list(incomplete.dimensions),
                                mask=incomplete.mask.copy(),
                                name=f"{incomplete.name}-drifting")
    windows = list(WindowedStream.from_tensor(drifting, window_size=WINDOW,
                                              stride=WINDOW))
    return drifting.slice_time(0, half), windows, half


def run_arm(online, store_dir, head, windows):
    """Serve the stream; score @latest on shared deterministic probes."""
    # A short history buffer keeps drift-triggered refits dominated by
    # post-shift windows, so the new version adapts to the new regime
    # instead of averaging it away against stale pre-drift data.
    svc = StreamingService(store_dir=str(store_dir),
                           default_max_history=4 * WINDOW)
    model = svc.service.fit(head, method=METHOD, model_id="online-bench")
    svc.open_stream("online-bench", warm_start=ModelRef.latest(model),
                    refit_every=0)
    loop = OnlineLoop(svc, drift=DRIFT_CONFIG, canary=CANARY_CONFIG)
    if online:
        loop.watch("online-bench")
    scorer = DriftDetector("online-bench", DRIFT_CONFIG)
    scores = {}
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for window in windows:
            loop.push("online-bench", window)
            loop.step()
            probe = scorer.make_probe(window)
            if probe is None:
                continue
            probe_tensor, hidden = probe
            result = svc.service.impute(
                ImputeRequest(model_id=ModelRef.latest("online-bench"),
                              data=probe_tensor))
            scores[window.index] = nrmse(result.completed, window.tensor,
                                         mask=hidden)
    elapsed = time.perf_counter() - start
    return svc, loop, scores, elapsed


def test_online_drift_recovery(results_dir, tmp_path):
    head, windows, half = make_drifting_stream()
    post_shift = [w.index for w in windows if w.start >= half]

    _, _, static_scores, static_elapsed = run_arm(
        False, tmp_path / "static", head, windows)
    svc, loop, online_scores, online_elapsed = run_arm(
        True, tmp_path / "online", head, windows)

    def post_mean(scores):
        vals = [scores[i] for i in post_shift
                if i in scores and np.isfinite(scores[i])]
        return float(np.mean(vals)) if vals else float("nan")

    static_nrmse = post_mean(static_scores)
    online_nrmse = post_mean(online_scores)
    gain = static_nrmse / online_nrmse if online_nrmse > 0 else float("nan")

    journal = svc.service.versions.history("online-bench")
    transitions = [(e["event"], e["version"]) for e in journal]
    exactly_once = float(len(set(transitions)) == len(transitions)
                         and len(journal) > 0)
    serving = svc.service.resolve_ref(ModelRef.latest("online-bench"))
    snap = loop.snapshot()

    metrics = {
        "online.drift_gain": gain,
        "online.exactly_once": exactly_once,
        "online.static_nrmse": static_nrmse,
        "online.online_nrmse": online_nrmse,
        "online.windows_per_second": len(windows) / online_elapsed,
        "online.drift_events": float(snap["drift_events"]),
        "online.refits": float(snap["loop_refits"]),
        "online.promotions": float(snap["promotions"]),
        "online.rollbacks": float(snap["rollbacks"]),
    }
    lines = [
        f"online   {len(windows)} windows of {WINDOW}   "
        f"shift {SHIFT_SIGMA:g} sigma at t={half}   method {METHOD}",
        f"quality  post-drift NRMSE static {static_nrmse:.3f}   "
        f"online {online_nrmse:.3f}   gain {gain:.2f}x",
        f"loop     {snap['drift_events']} drift events   "
        f"{snap['loop_refits']} refits   {snap['promotions']} promotions   "
        f"{snap['rollbacks']} rollbacks   serving {serving!r}",
        f"journal  {len(journal)} transitions   exactly-once "
        f"{'yes' if exactly_once else 'NO'}   "
        f"{len(windows) / online_elapsed:.1f} windows/sec "
        f"(static arm {len(windows) / static_elapsed:.1f})",
    ]
    payload = {
        "benchmark": "online",
        "fast_mode": is_fast(),
        "workload": {
            "dataset": "airq",
            "window": WINDOW,
            "windows": len(windows),
            "shift_sigma": SHIFT_SIGMA,
            "method": METHOD,
            "scenario": SCENARIO.describe(),
        },
        "metrics": {key: round(float(value), 6)
                    for key, value in sorted(metrics.items())},
        # drift_gain is a dimensionless quality ratio (host-independent);
        # exactly_once is pass/fail.  Windows/sec and lifecycle counters
        # are reported, not gated.
        "gate": ["online.drift_gain", "online.exactly_once"],
    }
    emit(results_dir, "online",
         "Online drift recovery: frozen model vs closed control loop",
         "\n".join(lines))
    (results_dir / "online.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    if not is_fast():
        (REPO_ROOT / "BENCH_online.json").write_text(
            json.dumps(payload, indent=2) + "\n")

    assert exactly_once == 1.0, (
        f"duplicate journal transitions: {transitions}")
    assert snap["drift_events"] >= 1, "the level shift must trip the budget"
    assert snap["promotions"] >= 1, "a refit version must be promoted"
    assert gain > 1.1, (
        f"online loop must beat the frozen model post-drift, got "
        f"{gain:.2f}x (static {static_nrmse:.3f} vs online "
        f"{online_nrmse:.3f})")
