"""Shared plumbing for the per-figure benchmark modules.

The benchmarks regenerate every table and figure of the paper's evaluation
section at laptop scale: datasets are the synthetic stand-ins at reduced
length, and the deep methods run with reduced capacity/epochs.  Absolute MAE
values therefore differ from the paper; the *shape* of each artefact (which
method wins, by roughly what factor, where the crossovers are) is what the
harness reports and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import create_imputer
from repro.core.config import DeepMVIConfig
from repro.data.datasets import load_dataset
from repro.data.missing import MissingScenario, apply_scenario
from repro.data.tensor import TimeSeriesTensor
from repro.evaluation.metrics import mae

#: dataset size preset used throughout the benchmarks
BENCH_SIZE = "small"

#: DeepMVI configuration used by the benchmarks (reduced epochs/capacity
#: relative to the paper, but enough steps to converge at this data scale)
BENCH_DEEPMVI = dict(
    max_epochs=20, samples_per_epoch=512, patience=4, batch_size=32,
    n_filters=16, max_context_windows=64,
)

#: reduced-capacity settings for the other deep baselines
BENCH_DEEP_BASELINES: Dict[str, Dict] = {
    "brits": dict(n_epochs=30, hidden_dim=16, crop_length=48),
    "gpvae": dict(n_epochs=40, hidden_dim=16, latent_dim=6, crop_length=48),
    "transformer": dict(n_epochs=30, model_dim=16, crop_length=96, batch_size=16),
    "mrnn": dict(n_epochs=4, hidden_dim=8, crop_length=24, batch_size=2),
}


def build_method(name: str, **config_overrides):
    """Instantiate a method with benchmark-scale settings."""
    key = name.lower()
    if key in ("deepmvi", "deepmvi1d"):
        params = dict(BENCH_DEEPMVI)
        params.update(config_overrides)
        config = DeepMVIConfig(**params)
        if key == "deepmvi1d":
            config = config.ablated(flatten_dimensions=True)
        return create_imputer("deepmvi", config=config)
    if key.startswith("deepmvi-"):
        # Ablation variants: deepmvi-no-tt / -no-context / -no-kr / -no-fg
        flag = {
            "deepmvi-no-tt": {"use_temporal_transformer": False},
            "deepmvi-no-context": {"use_context_window": False},
            "deepmvi-no-kr": {"use_kernel_regression": False},
            "deepmvi-no-fg": {"use_fine_grained": False},
        }[key]
        params = dict(BENCH_DEEPMVI)
        params.update(config_overrides)
        config = DeepMVIConfig(**params).ablated(**flag)
        return create_imputer("deepmvi", config=config)
    kwargs = BENCH_DEEP_BASELINES.get(key, {})
    return create_imputer(key, **kwargs)


def bench_dataset(name: str, seed: int = 0, length: Optional[int] = None,
                  shape: Optional[Tuple[int, ...]] = None) -> TimeSeriesTensor:
    """Load a benchmark-sized dataset."""
    return load_dataset(name, size=BENCH_SIZE, seed=seed, length=length, shape=shape)


def evaluate_cell(truth: TimeSeriesTensor, scenario: MissingScenario,
                  method: str, seed: int = 0) -> Dict[str, float]:
    """Run one (dataset, scenario, method) cell and report MAE + runtime."""
    incomplete, missing_mask = apply_scenario(truth, scenario, seed=seed)
    imputer = build_method(method)
    start = time.perf_counter()
    completed = imputer.fit_impute(incomplete)
    runtime = time.perf_counter() - start
    return {
        "dataset": truth.name,
        "scenario": scenario.name,
        "method": method,
        "mae": mae(completed, truth, missing_mask),
        "runtime": runtime,
        "missing_cells": int(missing_mask.sum()),
    }


def evaluate_grid(datasets: Sequence[str], scenarios: Dict[str, MissingScenario],
                  methods: Sequence[str], seed: int = 0) -> List[Dict[str, float]]:
    """Evaluate every method on every (dataset, scenario) pair."""
    rows: List[Dict[str, float]] = []
    for dataset_name in datasets:
        truth = bench_dataset(dataset_name, seed=seed)
        for scenario in scenarios.values():
            for method in methods:
                rows.append(evaluate_cell(truth, scenario, method, seed=seed))
    return rows


def rows_to_table(rows: Iterable[Dict[str, float]], index: str = "dataset",
                  column: str = "method", value: str = "mae") -> Dict[str, Dict[str, float]]:
    """Pivot raw result rows into ``{index: {column: value}}``."""
    table: Dict[str, Dict[str, float]] = {}
    for row in rows:
        table.setdefault(str(row[index]), {})[str(row[column])] = float(row[value])
    return table


def format_table(table: Dict[str, Dict[str, float]], index_name: str = "dataset",
                 value_format: str = "{:.3f}") -> str:
    """Aligned plain-text rendering of a pivoted table."""
    columns: List[str] = []
    for row in table.values():
        for name in row:
            if name not in columns:
                columns.append(name)
    header = [index_name] + columns
    body = []
    for key, row in table.items():
        body.append([str(key)] + [
            value_format.format(row[name]) if name in row else "-" for name in columns])
    widths = [max(len(line[i]) for line in [header] + body) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in body]
    return "\n".join(lines)


def emit(results_dir, experiment_id: str, title: str, text: str) -> None:
    """Print a benchmark artefact and persist it under benchmarks/results/."""
    banner = f"\n=== {experiment_id}: {title} ===\n{text}\n"
    print(banner)
    path = results_dir / f"{experiment_id}.txt"
    path.write_text(banner.lstrip("\n") + "\n")


def winner_per_row(table: Dict[str, Dict[str, float]]) -> Dict[str, str]:
    """Lowest-value column per row (used for shape-of-result summaries)."""
    return {row_name: min(row, key=row.get) for row_name, row in table.items()}
