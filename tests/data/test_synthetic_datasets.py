"""Tests of the synthetic generators and the dataset registry."""

import numpy as np
import pytest

from repro.data.datasets import (
    get_profile,
    list_datasets,
    load_dataset,
    table1_summary,
)
from repro.data.synthetic import (
    SyntheticSeriesConfig,
    generate_correlated_groups,
    generate_panel,
    _level,
)
from repro.exceptions import ConfigError, DatasetError


class TestSyntheticGenerator:
    def test_shape_matches_config(self):
        config = SyntheticSeriesConfig(shape=(4, 3), length=64, seed=1)
        panel = generate_panel(config)
        assert panel.shape == (4, 3, 64)
        assert panel.n_dims == 2

    def test_reproducible_from_seed(self):
        a = generate_panel(SyntheticSeriesConfig(shape=(3,), length=50, seed=5))
        b = generate_panel(SyntheticSeriesConfig(shape=(3,), length=50, seed=5))
        np.testing.assert_allclose(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generate_panel(SyntheticSeriesConfig(shape=(3,), length=50, seed=5))
        b = generate_panel(SyntheticSeriesConfig(shape=(3,), length=50, seed=6))
        assert not np.allclose(a.values, b.values)

    def test_series_are_z_normalised(self):
        panel = generate_panel(SyntheticSeriesConfig(shape=(5,), length=200, seed=0))
        matrix, _ = panel.to_matrix()
        np.testing.assert_allclose(matrix.mean(axis=1), np.zeros(5), atol=1e-9)
        np.testing.assert_allclose(matrix.std(axis=1), np.ones(5), atol=1e-9)

    def test_no_missing_values(self):
        panel = generate_panel(SyntheticSeriesConfig(shape=(3,), length=80, seed=2))
        assert panel.missing_fraction == 0.0

    def test_high_relatedness_increases_cross_correlation(self):
        def mean_abs_corr(relatedness):
            panel = generate_panel(SyntheticSeriesConfig(
                shape=(8,), length=400, relatedness=relatedness,
                seasonality="low", noise_std=0.05, seed=3))
            matrix, _ = panel.to_matrix()
            corr = np.corrcoef(matrix)
            off_diag = corr[~np.eye(8, dtype=bool)]
            return np.abs(off_diag).mean()

        assert mean_abs_corr("high") > mean_abs_corr("none") + 0.1

    def test_seasonality_increases_autocorrelation_structure(self):
        def periodicity_score(seasonality):
            panel = generate_panel(SyntheticSeriesConfig(
                shape=(4,), length=400, seasonality=seasonality,
                relatedness="none", trend_strength=0.0, noise_std=0.3, seed=9))
            matrix, _ = panel.to_matrix()
            spectra = np.abs(np.fft.rfft(matrix, axis=1)) ** 2
            return float(spectra[:, 1:].max(axis=1).mean() / spectra[:, 1:].mean())

        assert periodicity_score("high") > periodicity_score(0.0)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ConfigError):
            _level("extreme")
        with pytest.raises(ConfigError):
            _level(1.5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticSeriesConfig(length=2)
        with pytest.raises(ConfigError):
            SyntheticSeriesConfig(shape=(0,))
        with pytest.raises(ConfigError):
            SyntheticSeriesConfig(noise_std=-1.0)

    def test_correlated_groups_structure(self):
        panel = generate_correlated_groups(n_groups=3, series_per_group=4,
                                           length=200, seed=1, noise_std=0.05)
        matrix, _ = panel.to_matrix()
        corr = np.corrcoef(matrix)
        within = corr[0, 1]            # same group
        across = abs(corr[0, 5])       # different group
        assert within > 0.8
        assert within > across


class TestDatasetRegistry:
    def test_ten_datasets_registered(self):
        assert len(list_datasets()) == 10

    def test_profiles_match_table1_dimensionality(self):
        assert len(get_profile("janatahack").shape) == 2
        assert len(get_profile("m5").shape) == 2
        assert len(get_profile("airq").shape) == 1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            get_profile("not-a-dataset")
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_unknown_size_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("airq", size="huge")

    def test_load_dataset_sets_name(self):
        assert load_dataset("climate", size="tiny").name == "climate"

    def test_size_presets_scale_length(self):
        tiny = load_dataset("bafu", size="tiny")
        small = load_dataset("bafu", size="small")
        assert tiny.n_time < small.n_time

    def test_explicit_overrides(self):
        panel = load_dataset("m5", length=100, shape=(3, 4))
        assert panel.shape == (3, 4, 100)

    def test_deterministic_per_seed(self):
        a = load_dataset("gas", size="tiny", seed=2)
        b = load_dataset("gas", size="tiny", seed=2)
        np.testing.assert_allclose(a.values, b.values)

    def test_table1_summary_rows(self):
        rows = table1_summary()
        assert len(rows) == 10
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["bafu"]["paper_length"] == 50000
        assert by_name["janatahack"]["dimensions"] == 2
        for row in rows:
            assert {"repetition_within", "relatedness_across"} <= set(row)

    def test_profile_config_respects_overrides(self):
        profile = get_profile("airq")
        config = profile.config(length=77, seed=3)
        assert config.length == 77
        assert config.seed == 3
