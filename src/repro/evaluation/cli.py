"""Command-line interface for running imputation experiments.

Sweeps run through the experiment engine (:mod:`repro.engine`): every
(dataset, scenario, method) cell is a hashable job, ``--workers N`` fans the
jobs out over a process pool, and ``--cache-dir DIR`` persists each completed
cell to a JSONL store so an interrupted sweep can be resumed — re-running the
same command (or using the ``resume`` subcommand) executes only the cells
that are still missing.

Examples
--------
List what is available (methods come from the plugin registry with their
kind, capability tags and ablation variants)::

    python -m repro.evaluation.cli list

Serve imputations through the service layer — fit the model **once**, then
answer many impute requests from it (micro-batched through the engine)::

    python -m repro.evaluation.cli impute --dataset airq --scenario mcar \
        --method deepmvi --requests 4 --size tiny --output completed.npz

Replay a dataset as a live stream under an outage scenario — windowed
incremental serving through :mod:`repro.streaming`, with per-window MAE,
per-window latency and end-to-end windows/sec::

    python -m repro.evaluation.cli stream --dataset airq --method interpolation \
        --scenario drift_outage --window 24 --streams 2 --size tiny

Hammer the serving gateway with concurrent producers — fit one model, then
compare one-at-a-time serving against the gateway's admission-controlled,
micro-batched worker pool (requests/sec, latency percentiles, fusion rate,
cache hit rate)::

    python -m repro.evaluation.cli gateway-bench --dataset airq \
        --method deepmvi --producers 8 --requests 8 --size tiny

Route requests through the sharded cluster tier, kill a shard mid-load,
and verify exactly-once delivery (zero lost, zero duplicated)::

    python -m repro.evaluation.cli cluster-bench --dataset airq \
        --method mean --shards 2 --requests 12 --size tiny

Run one (dataset, scenario, method) cell::

    python -m repro.evaluation.cli run --dataset climate --scenario mcar \
        --methods deepmvi cdrec svdimp --size tiny

Regenerate one of the paper's experiments (same grids the benchmark harness
uses, printed as a table), four cells at a time with a persistent cache::

    python -m repro.evaluation.cli experiment figure5 --size tiny \
        --workers 4 --cache-dir ~/.cache/repro/figure5

Resume that sweep after an interruption (only missing cells execute)::

    python -m repro.evaluation.cli resume figure5 --size tiny \
        --workers 4 --cache-dir ~/.cache/repro/figure5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import ImputationService, ImputeRequest
from repro.baselines.registry import list_method_infos
from repro.core.config import DeepMVIConfig
from repro.data.datasets import list_datasets, load_dataset
from repro.data.missing import MissingScenario, apply_scenario, list_scenarios
from repro.evaluation.metrics import mae
from repro.evaluation.experiments import (
    EXPERIMENTS,
    STANDARD_SCENARIOS,
    list_experiments,
    scenario_for,
)
from repro.evaluation.reporting import format_table, pivot
from repro.evaluation.runner import ExperimentRunner


def _deepmvi_kwargs(size: str) -> dict:
    """Benchmark-scale DeepMVI settings keyed by dataset size preset."""
    if size == "tiny":
        return {"config": DeepMVIConfig(max_epochs=12, samples_per_epoch=256,
                                        patience=3, n_filters=16)}
    return {"config": DeepMVIConfig(max_epochs=20, samples_per_epoch=512, patience=4)}


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 runs serially")
    parser.add_argument("--cache-dir", default=None,
                        help="persist per-cell results here and skip "
                             "already-completed cells on re-runs")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-eval", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list datasets, scenarios, methods, experiments")

    run = subparsers.add_parser("run", help="run methods on one dataset/scenario")
    run.add_argument("--dataset", required=True, choices=list_datasets())
    run.add_argument("--scenario", required=True, choices=list_scenarios())
    run.add_argument("--methods", nargs="+", required=True)
    run.add_argument("--size", default="tiny", choices=["tiny", "small", "default"])
    run.add_argument("--block-size", type=int, default=10)
    run.add_argument("--incomplete-fraction", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(run)

    impute = subparsers.add_parser(
        "impute", help="serve impute requests from one fitted model "
                       "(fit once, impute many)")
    impute.add_argument("--dataset", required=True, choices=list_datasets())
    impute.add_argument("--scenario", default="mcar", choices=list_scenarios())
    impute.add_argument("--method", default="deepmvi")
    impute.add_argument("--size", default="tiny", choices=["tiny", "small", "default"])
    impute.add_argument("--requests", type=int, default=2,
                        help="number of distinct missing-value patterns to "
                             "serve from the single fitted model")
    impute.add_argument("--block-size", type=int, default=10)
    impute.add_argument("--incomplete-fraction", type=float, default=1.0)
    impute.add_argument("--seed", type=int, default=0)
    impute.add_argument("--store-dir", default=None,
                        help="persist the fitted model as an artifact here")
    impute.add_argument("--output", default=None,
                        help="write the completed tensors to this .npz file")
    impute.add_argument("--workers", type=int, default=1,
                        help="process-pool width for serving batches")

    stream = subparsers.add_parser(
        "stream", help="replay a dataset as a windowed stream and report "
                       "per-window MAE + windows/sec")
    stream.add_argument("--dataset", required=True, choices=list_datasets())
    stream.add_argument("--method", default="interpolation")
    stream.add_argument("--scenario", default="drift_outage",
                        choices=list_scenarios())
    stream.add_argument("--size", default="tiny",
                        choices=["tiny", "small", "default"])
    stream.add_argument("--window", type=int, default=48,
                        help="sliding-window length in time steps")
    stream.add_argument("--stride", type=int, default=None,
                        help="steps between windows (default: window // 2)")
    stream.add_argument("--refit-every", type=int, default=8,
                        help="incremental refit cadence in windows; "
                             "0 fits once and never refits")
    stream.add_argument("--max-history", type=int, default=512,
                        help="bound (time steps) on the refit history")
    stream.add_argument("--streams", type=int, default=1,
                        help="number of concurrent streams to replay")
    stream.add_argument("--block-size", type=int, default=10)
    stream.add_argument("--incomplete-fraction", type=float, default=1.0)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--store-dir", default=None,
                        help="model-store directory (required for workers "
                             "to ship artifact paths instead of pickles)")
    stream.add_argument("--workers", type=int, default=1,
                        help="process-pool width for each serving step")
    stream.add_argument("--quiet", action="store_true",
                        help="print only the summary, not per-window rows")

    gateway = subparsers.add_parser(
        "gateway-bench", help="load-generate against the serving gateway "
                              "and report QPS/latency/fusion telemetry")
    gateway.add_argument("--dataset", required=True, choices=list_datasets())
    gateway.add_argument("--scenario", default="mcar",
                         choices=list_scenarios())
    gateway.add_argument("--method", default="deepmvi")
    gateway.add_argument("--size", default="tiny",
                         choices=["tiny", "small", "default"])
    gateway.add_argument("--window", type=int, default=24,
                         help="length of each request's time window "
                              "(window-shaped traffic)")
    gateway.add_argument("--producers", type=int, default=8,
                         help="concurrent producer threads")
    gateway.add_argument("--requests", type=int, default=8,
                         help="requests submitted per producer")
    gateway.add_argument("--max-batch-size", type=int, default=16,
                         help="gateway micro-batch bound")
    gateway.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="how long an open batch waits for stragglers")
    gateway.add_argument("--workers", type=int, default=1,
                         help="gateway worker threads")
    gateway.add_argument("--queue-depth", type=int, default=1024,
                         help="bounded queue depth (admission control)")
    gateway.add_argument("--admission", default="block",
                         choices=["reject", "block"],
                         help="policy when the queue is full")
    gateway.add_argument("--batch-lane-share", type=float, default=0.25,
                         help="fraction of each producer's requests sent "
                              "on the low-priority 'batch' lane")
    gateway.add_argument("--skip-baseline", action="store_true",
                         help="skip the one-at-a-time baseline pass")
    gateway.add_argument("--block-size", type=int, default=10)
    gateway.add_argument("--incomplete-fraction", type=float, default=1.0)
    gateway.add_argument("--seed", type=int, default=0)
    gateway.add_argument("--store-dir", default=None,
                         help="persist the fitted model as an artifact here")

    cluster = subparsers.add_parser(
        "cluster-bench", help="serve through the sharded cluster router, "
                              "kill a shard mid-load, and verify "
                              "exactly-once delivery")
    cluster.add_argument("--dataset", required=True, choices=list_datasets())
    cluster.add_argument("--scenario", default="mcar",
                         choices=list_scenarios())
    cluster.add_argument("--method", default="deepmvi")
    cluster.add_argument("--size", default="tiny",
                         choices=["tiny", "small", "default"])
    cluster.add_argument("--shards", type=int, default=2,
                         help="shard worker processes behind the router")
    cluster.add_argument("--requests", type=int, default=12,
                         help="impute requests to route through the cluster")
    cluster.add_argument("--window", type=int, default=24,
                         help="length of each request's time window "
                              "(window-shaped traffic)")
    cluster.add_argument("--block-size", type=int, default=10)
    cluster.add_argument("--incomplete-fraction", type=float, default=1.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--store-dir", default=None,
                         help="shard state directory (default: a temp dir "
                              "removed on exit)")

    online = subparsers.add_parser(
        "online-bench", help="drift a stream mid-replay and compare a "
                             "static model against the closed online "
                             "loop (drift-triggered refits + canary)")
    online.add_argument("--dataset", required=True, choices=list_datasets())
    online.add_argument("--scenario", default="mcar",
                        choices=list_scenarios())
    online.add_argument("--method", default="fitted-mean",
                        help="imputation method; must learn from its fit "
                             "data for refits to matter (default: "
                             "fitted-mean)")
    online.add_argument("--size", default="tiny",
                        choices=["tiny", "small", "default"])
    online.add_argument("--window", type=int, default=16,
                        help="stream window length in time steps")
    online.add_argument("--shift", type=float, default=6.0,
                        help="mid-stream level shift, in multiples of the "
                             "observed std (the injected drift)")
    online.add_argument("--budget", type=float, default=2.0,
                        help="rolling-NRMSE drift budget of the watcher")
    online.add_argument("--block-size", type=int, default=10)
    online.add_argument("--incomplete-fraction", type=float, default=1.0)
    online.add_argument("--seed", type=int, default=0)
    online.add_argument("--store-dir", default=None,
                        help="model-store directory (default: a temp dir "
                             "removed on exit)")
    online.add_argument("--quiet", action="store_true",
                        help="print only the summary, not per-window rows")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's experiments")
    experiment.add_argument("experiment_id", choices=list_experiments())
    experiment.add_argument("--size", default="tiny",
                            choices=["tiny", "small", "default"])
    experiment.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(experiment)

    resume = subparsers.add_parser(
        "resume", help="resume an interrupted experiment sweep from its cache")
    resume.add_argument("experiment_id", choices=list_experiments())
    resume.add_argument("--size", default="tiny",
                        choices=["tiny", "small", "default"])
    resume.add_argument("--seed", type=int, default=0)
    resume.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 runs serially")
    resume.add_argument("--cache-dir", required=True,
                        help="cache directory of the interrupted sweep")
    return parser


def _command_list() -> int:
    print("datasets:   " + ", ".join(list_datasets()))
    print("scenarios:  " + ", ".join(list_scenarios()))
    print("experiments: " + ", ".join(list_experiments()))
    print()
    header = (f"{'method':<20} {'display':<18} {'kind':<13} "
              f"{'multidim':<9} tags")
    print(header)
    print("-" * len(header))
    for info in list_method_infos():
        variant = f" (variant of {info.variant_of})" if info.variant_of else ""
        tags = ", ".join(info.tags) or "-"
        multidim = "yes" if info.supports_multidim else "-"
        print(f"{info.name:<20} {info.display_name:<18} {info.kind:<13} "
              f"{multidim:<9} {tags}{variant}")
    return 0


def _scenario_from_args(args: argparse.Namespace) -> MissingScenario:
    if args.scenario in ("mcar", "mcar_points"):
        params = {"incomplete_fraction": args.incomplete_fraction,
                  "block_size": args.block_size}
    elif args.scenario == "blackout":
        params = {"block_size": args.block_size}
    elif args.scenario == "correlated_failure":
        params = {"incomplete_fraction": args.incomplete_fraction,
                  "block_size": args.block_size}
    else:
        # Every remaining generator (miss_disj, miss_over, drift_outage,
        # periodic_outage) takes the affected-series fraction only.
        params = {"incomplete_fraction": args.incomplete_fraction}
    return MissingScenario(args.scenario, params)


def _command_impute(args: argparse.Namespace) -> int:
    """Serve ``--requests`` missing-value patterns from ONE fitted model."""
    truth = load_dataset(args.dataset, size=args.size, seed=args.seed)
    scenario = _scenario_from_args(args)
    method_kwargs = (_deepmvi_kwargs(args.size)
                     if args.method.lower().startswith("deepmvi") else {})

    patterns = []
    for index in range(max(1, args.requests)):
        incomplete, missing_mask = apply_scenario(truth, scenario,
                                                  seed=args.seed + index)
        patterns.append((incomplete, missing_mask))

    service = ImputationService(store_dir=args.store_dir, workers=args.workers)
    model_id = service.fit(patterns[0][0], method=args.method, **method_kwargs)
    print(f"[service] fitted {args.method!r} once -> model {model_id}")
    for incomplete, _ in patterns:
        service.submit(ImputeRequest(model_id=model_id, data=incomplete))
    results = service.gather()

    print(f"[service] served {len(results)} request(s) from "
          f"{service.fit_counts[model_id]} fit ("
          f"{service.last_report.describe()})")
    print(f"\n{'request':<12} {'MAE':>8} {'seconds':>8}")
    for result, (_, missing_mask) in zip(results, patterns):
        error = mae(result.completed, truth, missing_mask)
        print(f"{result.request_id:<12} {error:>8.3f} "
              f"{result.runtime_seconds:>8.2f}")

    if args.output:
        import numpy as np

        arrays = {f"completed_{result.request_id}": result.completed.values
                  for result in results}
        np.savez_compressed(args.output, **arrays)
        print(f"\nwrote {len(arrays)} completed tensor(s) to {args.output}")
    return 0


def _command_gateway_bench(args: argparse.Namespace) -> int:
    """Hammer the gateway with concurrent producers; print the telemetry."""
    import threading
    import time

    from repro.gateway import Gateway, GatewayConfig

    truth = load_dataset(args.dataset, size=args.size, seed=args.seed)
    scenario = _scenario_from_args(args)
    incomplete, _ = apply_scenario(truth, scenario, seed=args.seed)
    window = min(args.window, max(2, truth.n_time - 1))
    method_kwargs = (_deepmvi_kwargs(args.size)
                     if args.method.lower().startswith("deepmvi") else {})

    service = ImputationService(store_dir=args.store_dir)
    model_id = service.fit(incomplete, method=args.method, **method_kwargs)
    print(f"[gateway] fitted {args.method!r} once -> model {model_id}")

    producers = max(1, args.producers)
    per_producer = max(1, args.requests)
    traffic = []
    for producer in range(producers):
        windows = []
        for index in range(per_producer):
            start = ((producer * per_producer + index) * 7) \
                % max(1, truth.n_time - window)
            windows.append(incomplete.slice_time(start, start + window))
        traffic.append(windows)
    total = producers * per_producer

    sequential_rps = None
    if not args.skip_baseline:
        start = time.perf_counter()
        for windows in traffic:
            for tensor in windows:
                service.impute(tensor, model_id=model_id)
        sequential_rps = total / (time.perf_counter() - start)
        print(f"[gateway] baseline: one-at-a-time service.impute() "
              f"{sequential_rps:,.1f} req/sec")

    config = GatewayConfig(
        max_queue_depth=args.queue_depth, admission=args.admission,
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        workers=args.workers)
    received = {}
    batch_every = (int(round(1.0 / args.batch_lane_share))
                   if args.batch_lane_share > 0 else 0)

    with Gateway(service, config) as gateway:
        barrier = threading.Barrier(producers + 1)

        def producer_loop(producer_index: int) -> None:
            barrier.wait()
            futures = []
            for index, tensor in enumerate(traffic[producer_index]):
                lane = ("batch" if batch_every and (index + 1) % batch_every
                        == 0 else "interactive")
                futures.append(gateway.submit(tensor, model_id=model_id,
                                              priority=lane))
            received[producer_index] = [future.result(timeout=120.0)
                                        for future in futures]

        threads = [threading.Thread(target=producer_loop, args=(index,),
                                    name=f"producer-{index}")
                   for index in range(producers)]
        for thread in threads:
            thread.start()
        barrier.wait()                     # time serving, not Thread.start
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = gateway.stats()

    gateway_rps = total / elapsed
    delivered = sum(len(results) for results in received.values())
    print(f"[gateway] {producers} producers x {per_producer} requests "
          f"(window={window}): {gateway_rps:,.1f} req/sec")
    if sequential_rps:
        print(f"[gateway] speedup vs one-at-a-time: "
              f"{gateway_rps / sequential_rps:.2f}x")
    print(f"\n{'metric':<26} value")
    print("-" * 40)
    rows = [
        ("requests delivered", f"{delivered}/{total}"),
        ("qps (window)", f"{stats['qps']:,.1f}"),
        ("latency p50", f"{stats['latency_p50_seconds'] * 1e3:.2f} ms"),
        ("latency p95", f"{stats['latency_p95_seconds'] * 1e3:.2f} ms"),
        ("latency p99", f"{stats['latency_p99_seconds'] * 1e3:.2f} ms"),
        ("fusion rate", f"{stats['fusion_rate']:.1%}"),
        ("fast-path hit rate", f"{stats['fast_path_hit_rate']:.1%}"),
        ("mean batch size", f"{stats['mean_batch_size']:.1f}"),
        ("batches", str(stats["batches"])),
        ("rejected / expired", f"{stats['rejected']} / {stats['expired']}"),
        ("model-cache hit rate",
         f"{stats['model_cache']['hit_rate']:.1%}"),
    ]
    table_info = (stats.get("fast_path") or {}).get(model_id)
    if table_info and table_info.get("built"):
        rows.append(("fast-path tables",
                     f"{table_info['nbytes'] / 1024:.1f} KiB, built in "
                     f"{table_info['build_seconds'] * 1e3:.1f} ms"))
    for label, value in rows:
        print(f"{label:<26} {value}")
    if delivered != total:
        print(f"[gateway] ERROR: lost {total - delivered} response(s)",
              file=sys.stderr)
        return 1
    return 0


def _command_cluster_bench(args: argparse.Namespace) -> int:
    """Route traffic through shard processes; prove exactly-once delivery.

    The crash drill: fit once, route window-shaped requests across the
    shards, SIGKILL the shard that owns the model while a full batch is
    queued, and verify that the restarted shard's journal replay plus the
    results ledger deliver every request exactly once — nothing lost,
    nothing served twice.
    """
    import tempfile
    import time

    from repro.api.requests import ImputeRequest
    from repro.cluster import ClusterRouter

    truth = load_dataset(args.dataset, size=args.size, seed=args.seed)
    scenario = _scenario_from_args(args)
    incomplete, _ = apply_scenario(truth, scenario, seed=args.seed)
    window = min(args.window, max(2, truth.n_time - 1))
    method_kwargs = (_deepmvi_kwargs(args.size)
                     if args.method.lower().startswith("deepmvi") else {})
    total = max(1, args.requests)
    windows = []
    for index in range(total):
        start = (index * 7) % max(1, truth.n_time - window)
        windows.append(incomplete.slice_time(start, start + window))

    with tempfile.TemporaryDirectory() as scratch:
        store_dir = args.store_dir or scratch
        with ClusterRouter(directory=store_dir,
                           shards=max(1, args.shards)) as router:
            model_id = router.fit(incomplete, method=args.method,
                                  **method_kwargs)
            owner = router.ring.assign(model_id)
            print(f"[cluster] fitted {args.method!r} once -> model "
                  f"{model_id} on {owner} "
                  f"({len(router.handles)} shard(s))")

            request_ids = [router.submit(tensor, model_id=model_id)
                           for tensor in windows]
            print(f"[cluster] queued {total} request(s); killing {owner} "
                  f"mid-load")
            router.kill_shard(owner)
            start = time.perf_counter()
            results = router.gather()
            elapsed = time.perf_counter() - start
            delivered = {result.request_id for result in results}
            lost = [rid for rid in request_ids if rid not in delivered]

            # Resend every id: the ledger must dedupe all of them, and the
            # journal must hold exactly one result row per request.
            for request_id, tensor in zip(request_ids, windows):
                router.submit(ImputeRequest(model_id=model_id, data=tensor,
                                            request_id=request_id))
            router.gather()
            deduped = router.last_deduped
            ledger_rows = sum(info.get("results", 0)
                              for info in router.shard_stats().values()
                              if info.get("alive"))
            duplicated = ledger_rows - total

            print(f"\n{'metric':<26} value")
            print("-" * 40)
            for label, value in [
                    ("requests delivered", f"{len(delivered)}/{total}"),
                    ("lost", str(len(lost))),
                    ("duplicated ledger rows", str(duplicated)),
                    ("resend dedupe hits", f"{deduped}/{total}"),
                    ("recoveries", str(len(router.recoveries))),
                    ("throughput", f"{total / elapsed:,.1f} req/sec "
                                   f"(incl. shard restart)")]:
                print(f"{label:<26} {value}")
            report = router.analytics(bucket_seconds=60.0)
            for row in report["p99_over_time"]:
                print(f"p99 bucket {row['bucket']:<15} "
                      f"{row['p99_seconds'] * 1e3:.2f} ms "
                      f"({row['completions']} completions)")
            ok = not lost and duplicated == 0 and deduped == total
            if not ok:
                print(f"[cluster] ERROR: lost={len(lost)} "
                      f"duplicated={duplicated} deduped={deduped}/{total}",
                      file=sys.stderr)
            return 0 if ok else 1


def _command_online_bench(args: argparse.Namespace) -> int:
    """Static model vs the closed online loop on a mid-stream level shift.

    Both arms replay the *same* drifting stream from the same fitted
    model and are scored on the same deterministic probe cells; the
    online arm additionally runs :class:`repro.online.OnlineLoop`
    (drift detection → warm-start refit → canary promote/rollback).
    The journal is checked for exactly-once transition recording.
    """
    import tempfile
    import warnings

    import numpy as np

    from repro.api.refs import ModelRef
    from repro.data.tensor import TimeSeriesTensor
    from repro.evaluation.metrics import nrmse
    from repro.online import CanaryConfig, DriftConfig, DriftDetector, \
        OnlineLoop
    from repro.streaming import StreamingService, WindowedStream

    truth = load_dataset(args.dataset, size=args.size, seed=args.seed)
    scenario = _scenario_from_args(args)
    incomplete, _ = apply_scenario(truth, scenario, seed=args.seed)
    window = max(4, min(args.window, incomplete.n_time // 4))

    # Inject the drift: a level shift on the second half of the timeline.
    _, observed_std = incomplete.observed_mean_std()
    half = incomplete.n_time // 2
    values = incomplete.values.copy()
    values[..., half:] += args.shift * (observed_std or 1.0)
    drifting = TimeSeriesTensor(values=values,
                                dimensions=list(incomplete.dimensions),
                                mask=incomplete.mask.copy(),
                                name=f"{incomplete.name}-drifting")
    head = drifting.slice_time(0, half)
    windows = list(WindowedStream.from_tensor(drifting, window_size=window,
                                              stride=window))
    post_shift = [w.index for w in windows if w.start >= half]

    drift_config = DriftConfig(nrmse_budget=args.budget, rolling_windows=2,
                               baseline_windows=2, cooldown_windows=2,
                               seed=args.seed)
    canary_config = CanaryConfig(min_shadow_samples=2, max_shadow_windows=8)

    def run_arm(online: bool, store_dir: str):
        svc = StreamingService(store_dir=store_dir)
        model = svc.service.fit(head, method=args.method,
                                model_id="online-bench")
        svc.open_stream("online-bench", warm_start=ModelRef.latest(model),
                        refit_every=0)
        loop = OnlineLoop(svc, drift=drift_config, canary=canary_config)
        if online:
            loop.watch("online-bench")
        # Both arms are scored on identical probe cells (same stream id,
        # seed and window indices → same hidden mask), against whatever
        # model @latest resolves to after each step.
        scorer = DriftDetector("online-bench", drift_config)
        scores = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for w in windows:
                loop.push("online-bench", w)
                loop.step()
                probe = scorer.make_probe(w)
                if probe is None:
                    continue
                probe_tensor, hidden = probe
                result = svc.service.impute(
                    ImputeRequest(model_id=ModelRef.latest("online-bench"),
                                  data=probe_tensor))
                scores[w.index] = nrmse(result.completed, w.tensor,
                                        mask=hidden)
        return svc, loop, scores

    with tempfile.TemporaryDirectory() as scratch:
        base = args.store_dir or scratch
        _, _, static_scores = run_arm(False, f"{base}/static")
        svc, loop, online_scores = run_arm(True, f"{base}/online")

        def post_mean(scores):
            vals = [scores[i] for i in post_shift
                    if i in scores and np.isfinite(scores[i])]
            return float(np.mean(vals)) if vals else float("nan")

        static_nrmse = post_mean(static_scores)
        online_nrmse = post_mean(online_scores)
        gain = static_nrmse / online_nrmse if online_nrmse > 0 else \
            float("nan")

        if not args.quiet:
            print(f"\n{'window':>6} {'static':>8} {'online':>8}")
            for w in windows:
                s = static_scores.get(w.index)
                o = online_scores.get(w.index)
                mark = " <- drift" if w.index == post_shift[0] else ""
                print(f"{w.index:>6} "
                      f"{s if s is not None else float('nan'):>8.3f} "
                      f"{o if o is not None else float('nan'):>8.3f}{mark}")

        journal = svc.service.versions.history("online-bench")
        unique = {(e["event"], e["version"]) for e in journal}
        exactly_once = len(unique) == len(journal)
        snap = loop.snapshot()
        print(f"\n[online] {args.dataset!r} + {args.shift:g} sigma shift at "
              f"t={half} ({len(windows)} windows of {window}, "
              f"method={args.method!r})")
        print(f"\n{'metric':<28} value")
        print("-" * 42)
        for label, value in [
                ("post-drift NRMSE (static)", f"{static_nrmse:.4f}"),
                ("post-drift NRMSE (online)", f"{online_nrmse:.4f}"),
                ("drift gain (static/online)", f"{gain:.2f}x"),
                ("drift events", str(snap.extras["drift_events"])),
                ("refits", str(snap.extras["loop_refits"])),
                ("promotions", str(snap.extras["promotions"])),
                ("rollbacks", str(snap.extras["rollbacks"])),
                ("journal transitions", str(len(journal))),
                ("journalled exactly once",
                 "yes" if exactly_once else "NO")]:
            print(f"{label:<28} {value}")
        if not exactly_once:
            print("[online] ERROR: duplicate journal transitions",
                  file=sys.stderr)
            return 1
        return 0


def _command_stream(args: argparse.Namespace) -> int:
    """Replay a dataset as a stream; per-window MAE + overall windows/sec."""
    from repro.streaming import replay

    scenario = _scenario_from_args(args)
    report = replay(
        args.dataset, method=args.method, scenario=scenario,
        window_size=args.window, stride=args.stride,
        refit_every=args.refit_every, max_history=args.max_history,
        n_streams=args.streams, workers=args.workers,
        store_dir=args.store_dir, size=args.size, seed=args.seed)

    print(f"[stream] replayed {args.dataset!r} under {scenario.describe()} "
          f"with {args.method!r} (window={args.window}, "
          f"refit_every={args.refit_every})")
    if not args.quiet:
        print(f"\n{'stream':<8} {'window':>6} {'span':>12} {'refit':>5} "
              f"{'MAE':>8} {'ms':>8}")
        for row in report.rows:
            error = f"{row.mae:.3f}" if row.mae == row.mae else "-"
            status = "FAIL" if not row.ok else error
            print(f"{row.stream_id:<8} {row.window_index:>6} "
                  f"{f'[{row.start},{row.stop})':>12} "
                  f"{'yes' if row.refit else '-':>5} {status:>8} "
                  f"{row.latency_seconds * 1e3:>8.1f}")
    print(f"\n[stream] {report.describe()}")
    if report.failures:
        failed = [row for row in report.rows if not row.ok]
        print(f"[stream] first failure ({failed[0].stream_id} window "
              f"{failed[0].window_index}):", file=sys.stderr)
        print(failed[0].error, file=sys.stderr)
    return 0 if not report.failures else 1


def _command_run(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, size=args.size, seed=args.seed)
    scenario = _scenario_from_args(args)

    runner = ExperimentRunner(
        methods=args.methods,
        method_kwargs={m.lower(): _deepmvi_kwargs(args.size)
                       for m in args.methods
                       if m.lower().startswith("deepmvi")},
        seed=args.seed)
    results = runner.run_grid([data], [scenario], seed=args.seed,
                              workers=args.workers, cache_dir=args.cache_dir)
    _report_failures(runner)
    print(format_table(pivot(results, index="method", columns="scenario", value="mae"),
                       index_name="method"))
    runtimes = ", ".join(f"{r.method}={r.runtime_seconds:.2f}s" for r in results)
    print(f"\nruntimes: {runtimes}")
    return 0 if not runner.last_report.failed else 1


def _command_experiment(args: argparse.Namespace) -> int:
    spec = EXPERIMENTS[args.experiment_id]
    print(f"{spec.experiment_id}: {spec.description}")
    if not spec.methods:
        from repro.data.datasets import table1_summary
        for row in table1_summary():
            print(row)
        return 0

    runner = ExperimentRunner(
        methods=list(spec.methods),
        method_kwargs={name: _deepmvi_kwargs(args.size) for name in spec.methods
                       if name.startswith("deepmvi")},
        seed=args.seed)
    datasets = [load_dataset(name, size=args.size, seed=args.seed)
                for name in spec.datasets]
    scenarios = [scenario_for(name) for name in spec.scenarios
                 if name in STANDARD_SCENARIOS]
    if not scenarios:
        scenarios = [scenario_for("mcar")]
    results = runner.run_grid(datasets, scenarios, seed=args.seed,
                              workers=args.workers, cache_dir=args.cache_dir)
    print(f"[engine] {runner.last_report.describe()}")
    _report_failures(runner)
    print(format_table(pivot(results, index="dataset", columns="method", value="mae")))
    return 0 if not runner.last_report.failed else 1


def _report_failures(runner: ExperimentRunner) -> None:
    report = runner.last_report
    if report is None or not report.failed:
        return
    print(f"[engine] {report.failed} cell(s) failed; last error:", file=sys.stderr)
    print(report.failures[-1].error, file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "impute":
        return _command_impute(args)
    if args.command == "stream":
        return _command_stream(args)
    if args.command == "gateway-bench":
        return _command_gateway_bench(args)
    if args.command == "cluster-bench":
        return _command_cluster_bench(args)
    if args.command == "online-bench":
        return _command_online_bench(args)
    if args.command == "run":
        return _command_run(args)
    if args.command in ("experiment", "resume"):
        return _command_experiment(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
