"""Figure 9: multidimensional kernel regression on JanataHack.

The paper compares DeepMVI (separate store and product embeddings) with
DeepMVI1D (flattened series index, double-size embedding) and with the
conventional methods, under MCAR as the fraction of incomplete series grows.
The multidimensional structure should help, especially with many short
series.
"""

from repro.data.missing import MissingScenario

from benchmarks._harness import bench_dataset, emit, evaluate_cell

METHODS = ("cdrec", "trmf", "svdimp", "deepmvi1d", "deepmvi")
SWEEP_PERCENT = (20, 100)


def _run():
    truth = bench_dataset("janatahack", seed=0, shape=(8, 6), length=134)
    series = {method: [] for method in METHODS}
    for percent in SWEEP_PERCENT:
        scenario = MissingScenario(
            "mcar", {"incomplete_fraction": percent / 100.0, "block_size": 8})
        for method in METHODS:
            cell = evaluate_cell(truth, scenario, method, seed=1)
            series[method].append((percent, cell["mae"]))
    return series


def test_fig9_multidimensional_kernel_regression(benchmark, results_dir):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"MCAR MAE on JanataHack vs % incomplete series {list(SWEEP_PERCENT)}"]
    for method, points in series.items():
        values = "  ".join(f"{value:.3f}" for _, value in points)
        lines.append(f"  {method:<12} {values}")
    emit(results_dir, "figure9", "Multidimensional kernel regression", "\n".join(lines))
    assert set(series) == set(METHODS)
