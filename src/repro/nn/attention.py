"""Multi-head attention used by the transformer-based models."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, as_tensor


class MultiHeadAttention(Module):
    """Standard multi-head scaled dot-product attention.

    Queries, keys and values are projected to ``n_heads`` subspaces of size
    ``model_dim // n_heads``, attended independently, concatenated and
    projected back to ``model_dim``.  An optional boolean/0-1 ``mask`` of
    shape ``(..., Lq, Lk)`` restricts which key positions may be attended.
    """

    def __init__(self, model_dim: int, n_heads: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if model_dim % n_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} must be divisible by n_heads {n_heads}")
        rng = rng or np.random.default_rng(0)
        self.model_dim = model_dim
        self.n_heads = n_heads
        self.head_dim = model_dim // n_heads
        self.query_proj = Linear(model_dim, model_dim, rng=rng)
        self.key_proj = Linear(model_dim, model_dim, rng=rng)
        self.value_proj = Linear(model_dim, model_dim, rng=rng)
        self.output_proj = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        """(B, L, D) -> (B, H, L, d)."""
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        """(B, H, L, d) -> (B, L, D)."""
        batch, heads, length, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * dim)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: Optional[np.ndarray] = None) -> Tuple[Tensor, np.ndarray]:
        """Attend and return ``(output, attention_weights)``.

        ``query``/``key``/``value`` are ``(..., L, model_dim)`` tensors with
        any number of leading batch axes (the fused serving path stacks an
        extra one); the returned output is ``(..., Lq, model_dim)`` and the
        weights are a plain numpy array ``(..., n_heads, Lq, Lk)`` for
        inspection.
        """
        query = as_tensor(query)
        key = as_tensor(key)
        value = as_tensor(value)
        if query.data.ndim < 2:
            raise ValueError(
                f"query must be (..., L, model_dim), got shape {query.shape}")
        # Fold every leading batch axis into one; unfold on the way out.
        lead = query.shape[:-2]
        len_q = query.shape[-2]
        len_k = key.shape[-2]
        if len(lead) != 1:
            batch = int(np.prod(lead)) if lead else 1
            query = query.reshape(batch, len_q, self.model_dim)
            key = key.reshape(batch, len_k, self.model_dim)
            value = value.reshape(batch, len_k, self.model_dim)
        else:
            batch = lead[0]

        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))

        if mask is None:
            mask = np.ones((batch, 1, len_q, len_k))
        else:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.ndim == 2:
                # (Lq, Lk): one pattern shared by every sample and head.
                mask = np.broadcast_to(mask, (batch, 1, len_q, len_k))
            elif mask.ndim == len(lead) + 2:
                # (..., Lq, Lk): per-sample, shared across heads.
                mask = np.broadcast_to(
                    mask, lead + (len_q, len_k)).reshape(
                        batch, 1, len_q, len_k)
            elif mask.ndim == len(lead) + 3:
                # (..., H, Lq, Lk): fully explicit per-head mask.
                mask = np.broadcast_to(
                    mask, lead + mask.shape[-3:]).reshape(
                        batch, mask.shape[-3], len_q, len_k)
            else:
                raise ValueError(
                    f"mask shape {mask.shape} is incompatible with "
                    f"query shape {lead + (len_q, self.model_dim)}")
        out, weights = F.batched_attention(q, k, v, mask)
        merged = self._merge_heads(out)
        output = self.output_proj(merged)
        if len(lead) != 1:
            output = output.reshape(lead + (len_q, self.model_dim))
            weights_data = weights.data.reshape(
                lead + (self.n_heads, len_q, len_k))
            return output, weights_data
        return output, weights.data
