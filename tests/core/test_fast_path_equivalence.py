"""Equivalence suite for the precompute-and-lookup serving fast path.

The fast path's contract is *exactness*, not approximation: a table hit
must reproduce the full forward's prediction (same modules, frozen
parameters, same op order — see :mod:`repro.core.fast_path`), and a miss
must fall back to a forward pass that is bit-identical to serving without
tables at all.  Every test here checks one face of that contract.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import DeepMVIConfig
from repro.core.fast_path import build_fast_path_tables, verify_fast_path
from repro.core.imputer import DeepMVIImputer
from repro.data.dimensions import Dimension
from repro.data.tensor import TimeSeriesTensor

#: table hits must match the full forward to float64 noise; in practice
#: they are bitwise identical and the oracle reports max_abs_diff == 0.0
TIGHT_TOL = 1e-10


def _fit(tensor, **config_overrides):
    config = DeepMVIConfig.fast(**config_overrides)
    return DeepMVIImputer(config=config, auto_window=False).fit(tensor)


def _incomplete(tensor, seed=0):
    """The fixture with MCAR missingness (some fixtures are complete)."""
    from repro.data.missing import mcar

    if (tensor.mask == 0).any():
        return tensor
    missing = mcar(tensor, incomplete_fraction=0.5, missing_rate=0.1,
                   block_size=4, rng=np.random.default_rng(seed))
    return tensor.with_missing(missing.reshape(tensor.values.shape))


def _copy_of(tensor):
    """A content-identical tensor that is a *different object*."""
    return TimeSeriesTensor(values=tensor.values.copy(),
                            dimensions=list(tensor.dimensions),
                            mask=tensor.mask.copy(),
                            name=tensor.name + "-copy")


def _without_fast_path(imputer):
    """The same trained weights, fast path disabled (bitwise reference)."""
    state = imputer.get_state()
    state["config"] = dict(state["config"], fast_path="off")
    state["fast_path"] = None
    return DeepMVIImputer().set_state(state)


# ---------------------------------------------------------------------- #
# table hits match the full forward on every dataset fixture
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture_name",
                         ["tiny_tensor", "small_panel",
                          "small_multidim_panel"])
def test_lookup_matches_full_forward_on_fixtures(fixture_name, request):
    tensor = _incomplete(request.getfixturevalue(fixture_name))
    imputer = _fit(tensor)
    assert imputer.fast_path_tables is not None
    report = verify_fast_path(imputer.model, imputer.context,
                              imputer.fast_path_tables)
    assert report["hit_rate"] == 1.0
    assert report["max_abs_diff"] <= TIGHT_TOL
    # In practice the lookup reproduces the forward bit-for-bit.
    assert report["exact_matches"] == report["hits"] == report["cells"]


@pytest.mark.parametrize("fixture_name",
                         ["tiny_tensor", "small_panel",
                          "small_multidim_panel"])
def test_served_imputation_matches_no_table_serving(fixture_name, request):
    tensor = _incomplete(request.getfixturevalue(fixture_name))
    imputer = _fit(tensor)
    reference = _without_fast_path(imputer)
    fast = imputer.impute()
    assert imputer.last_impute_info[0]["fast_path"] is True
    full = reference.impute()
    np.testing.assert_allclose(fast.values, full.values, atol=TIGHT_TOL)
    # Content-identical copies (repeat serving traffic) hit too.
    served = imputer.impute(_copy_of(tensor))
    assert imputer.last_impute_info[0]["fast_path"] is True
    np.testing.assert_allclose(served.values, full.values, atol=TIGHT_TOL)


@pytest.mark.parametrize("flags", [
    {"use_temporal_transformer": False},
    {"use_kernel_regression": False},
    {"use_fine_grained": False},
    {"use_kernel_regression": False, "use_fine_grained": False},
])
def test_equivalence_under_ablations(small_panel, flags):
    imputer = _fit(_incomplete(small_panel), **flags)
    report = verify_fast_path(imputer.model, imputer.context,
                              imputer.fast_path_tables)
    assert report["hit_rate"] == 1.0
    assert report["max_abs_diff"] <= TIGHT_TOL


# ---------------------------------------------------------------------- #
# forced miss: the fallback is bit-identical to serving without tables
# ---------------------------------------------------------------------- #
def test_forced_miss_falls_back_bit_identical(small_panel):
    small_panel = _incomplete(small_panel)
    imputer = _fit(small_panel)
    reference = _without_fast_path(imputer)
    # Same-shaped requests adopt the fitted normalisation, so shifting the
    # global stats no longer forces a miss — per-window content agreement
    # decides.  Perturbing every observed value of series 0 invalidates
    # every window of that series: each missing cell either spans a
    # perturbed window (series 0) or reads series 0 through its sibling
    # column, so every cell must miss and route through the full forward.
    values = small_panel.values.copy()
    mask = small_panel.mask.reshape(values.shape)
    values[0] = np.where(mask[0] == 1, values[0] + 1.0, values[0])
    perturbed = TimeSeriesTensor(values=values,
                                 dimensions=list(small_panel.dimensions),
                                 mask=small_panel.mask.copy(),
                                 name="perturbed")
    assert imputer.try_fast_path([perturbed]) is None
    via_tables_imputer = imputer.impute(perturbed)
    info = imputer.last_impute_info[0]
    assert info["fast_path_hits"] == 0 and info["fast_path"] is False
    via_reference = reference.impute(perturbed)
    # Bit-identical: the miss path runs exactly today's fused forward.
    assert np.array_equal(via_tables_imputer.values, via_reference.values)


def test_widened_hits_survive_global_stat_shift():
    """Same-shaped traffic with shifted global stats still hits per window.

    Before the per-window widening, *any* request whose observed mean/std
    differed from the fitted tensor's missed the tables wholesale —
    sliding-window streaming traffic never hit.  Serving contexts now
    adopt the fitted normalisation for same-shaped tensors, so a request
    that changed one window serves every unaffected window from the
    tables and only the cells reading the changed window pay a forward
    pass — still bit-identically to table-free serving.
    """
    rng = np.random.default_rng(11)
    n_series, n_time = 4, 200
    values = rng.normal(size=(n_series, n_time)).cumsum(axis=1)
    mask = np.ones_like(values)
    # window=5, max_context_windows=16 (DeepMVIConfig.fast): 40 windows.
    mask[0, 12] = 0      # series 0, window 2  -> span windows 0..15
    mask[0, 191] = 0     # series 0, window 38 -> span covers window 39
    values = np.where(mask == 1, values, np.nan)
    tensor = TimeSeriesTensor(
        values=values, dimensions=[Dimension.categorical("s", n_series)],
        mask=mask, name="stream")
    imputer = _fit(tensor)
    reference = _without_fast_path(imputer)

    # New data lands in the final window only (the live-tail shape of
    # sliding-window traffic); the global stats genuinely shift.
    arrived = values.copy()
    arrived[0, 197] += 3.5
    request = TimeSeriesTensor(
        values=arrived, dimensions=[Dimension.categorical("s", n_series)],
        mask=mask.copy(), name="stream-tick")
    assert float(request.observed_mean_std()[0]) != \
        float(tensor.observed_mean_std()[0])

    # All-or-nothing fast serving refuses (the tail cell misses) ...
    assert imputer.try_fast_path([request]) is None
    # ... but serving splits: the far cell hits, the tail cell forwards.
    served = imputer.impute(request)
    info = imputer.last_impute_info[0]
    assert info["cells"] == 2
    assert info["fast_path_hits"] == 1
    assert info["fast_path"] is False
    full = reference.impute(request)
    np.testing.assert_allclose(served.values, full.values, atol=TIGHT_TOL)


def test_partial_hits_within_one_request():
    """A request can hit for some cells and forward the rest — exactly.

    Swapping two observed values inside one window preserves the
    normalisation stats (same multiset) but invalidates that window, so
    cells whose bounded attention context covers it miss while far-away
    cells still hit.
    """
    rng = np.random.default_rng(7)
    n_series, n_time = 4, 200
    # Integer-valued data keeps every normalisation sum exact in float64,
    # so swapping two values leaves mean/std *bitwise* identical (float
    # summation is order-dependent otherwise and any swap would miss the
    # global compatibility check, not just one window).
    values = rng.integers(-20, 21, size=(n_series, n_time)).cumsum(
        axis=1).astype(np.float64)
    mask = np.ones_like(values)
    # window=5, max_context_windows=16 (DeepMVIConfig.fast): 40 windows,
    # spans cover 16.  Missing cells at windows 2 and 38.
    mask[0, 12] = 0      # series 0, window 2  -> span windows 0..15
    mask[0, 191] = 0     # series 0, window 38 -> span windows 24..39
    mask[1, 192] = 0     # series 1, window 38 -> span windows 24..39
    values = np.where(mask == 1, values, np.nan)
    # Nudge one far-away value so the observed mean is an exact integer:
    # then observed - mean, its squares, and their sums are all integers,
    # exactly representable and order-independent.
    observed_count = int(mask.sum())
    remainder = int(values[mask == 1].sum()) % observed_count
    values[3, 101] -= remainder
    assert float(values[mask == 1].mean()).is_integer()
    tensor = TimeSeriesTensor(
        values=values, dimensions=[Dimension.categorical("s", n_series)],
        mask=mask, name="partial")
    imputer = _fit(tensor)
    reference = _without_fast_path(imputer)

    swapped = values.copy()
    # Swap two observed values of series 0 inside window 39 (t 195..199).
    assert swapped[0, 195] != swapped[0, 197]
    swapped[0, 195], swapped[0, 197] = swapped[0, 197], swapped[0, 195]
    request = TimeSeriesTensor(
        values=swapped, dimensions=[Dimension.categorical("s", n_series)],
        mask=mask.copy(), name="swapped")

    # All-or-nothing fast serving must refuse (one cell misses) ...
    assert imputer.try_fast_path([request]) is None
    # ... but the serving path splits: far cells hit, near cells forward.
    served = imputer.impute(request)
    info = imputer.last_impute_info[0]
    assert info["cells"] == 3
    assert 0 < info["fast_path_hits"] < info["cells"]
    assert info["fast_path"] is False
    # series 0 window 38 misses (span covers the swapped window 39);
    # series 0 window 2 and series 1 window 38 hit (their own row spans
    # avoid it and every row still matches at their target columns).
    assert info["fast_path_hits"] == 2
    full = reference.impute(request)
    np.testing.assert_allclose(served.values, full.values, atol=TIGHT_TOL)


# ---------------------------------------------------------------------- #
# lifecycle: modes, staleness, persistence
# ---------------------------------------------------------------------- #
def test_off_mode_builds_nothing(tiny_tensor):
    imputer = _fit(tiny_tensor, fast_path="off")
    assert imputer.fast_path_tables is None
    imputer.impute()
    assert imputer.fast_path_tables is None
    assert imputer.last_impute_info[0]["fast_path"] is False
    assert imputer.try_fast_path([None]) is None


def test_lazy_mode_builds_on_first_serve(tiny_tensor):
    imputer = _fit(tiny_tensor, fast_path="lazy")
    assert imputer.fast_path_tables is None
    imputer.impute()
    assert imputer.fast_path_tables is not None
    assert imputer.last_impute_info[0]["fast_path"] is True


def test_background_mode_lands_and_serves(tiny_tensor):
    imputer = _fit(tiny_tensor, fast_path="background")
    assert imputer.wait_for_fast_path(timeout=30.0)
    imputer.impute()
    assert imputer.last_impute_info[0]["fast_path"] is True


def test_staleness_budget_forces_fallback(tiny_tensor):
    imputer = _fit(tiny_tensor, fast_path_staleness_seconds=0.01)
    time.sleep(0.05)
    assert imputer.fast_path_tables.stale(0.01)
    assert imputer.try_fast_path([None]) is None
    completed = imputer.impute()
    assert imputer.last_impute_info[0]["fast_path"] is False
    # Stale tables fall back, they do not corrupt: the full forward's
    # answer is the same either way.
    reference = _without_fast_path(imputer)
    assert np.array_equal(completed.values, reference.impute().values)
    # A refresh resets the clock and re-enables the fast path.
    imputer.refresh_fast_path()
    imputer.impute()
    assert imputer.last_impute_info[0]["fast_path"] is True


def test_tables_survive_artifact_round_trip(tmp_path, tiny_tensor):
    from repro.engine.artifacts import load_imputer, save_imputer

    imputer = _fit(tiny_tensor)
    expected = imputer.impute()
    save_imputer(imputer, tmp_path / "model")
    loaded = load_imputer(tmp_path / "model")
    assert loaded.fast_path_tables is not None
    served = loaded.impute()
    assert loaded.last_impute_info[0]["fast_path"] is True
    np.testing.assert_allclose(served.values, expected.values,
                               atol=TIGHT_TOL)
    # The rebuilt tables also serve identical-content request traffic.
    assert loaded.try_fast_path([_copy_of(tiny_tensor)]) is not None


def test_fast_path_info_reports_provenance(tiny_tensor):
    imputer = _fit(tiny_tensor)
    info = imputer.fast_path_info()
    assert info["built"] is True and info["mode"] == "fit"
    assert info["cells"] > 0 and info["nbytes"] > 0
    assert info["build_seconds"] >= 0.0 and info["age_seconds"] >= 0.0
    assert imputer.memory_nbytes() > imputer.fast_path_tables.nbytes


def test_build_tables_directly_matches_oracle(small_panel):
    imputer = _fit(_incomplete(small_panel), fast_path="off")
    tables = build_fast_path_tables(imputer.model, imputer.context)
    report = verify_fast_path(imputer.model, imputer.context, tables)
    assert report["hit_rate"] == 1.0
    assert report["max_abs_diff"] <= TIGHT_TOL
