"""Name → imputer factory used by the evaluation harness and the benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines.base import BaseImputer
from repro.baselines.brits import BRITSImputer
from repro.baselines.cdrec import CDRecImputer
from repro.baselines.dynammo import DynaMMoImputer
from repro.baselines.gpvae import GPVAEImputer
from repro.baselines.mrnn import MRNNImputer
from repro.baselines.simple import LinearInterpolationImputer, LOCFImputer, MeanImputer
from repro.baselines.stmvl import STMVLImputer
from repro.baselines.svd import SoftImputeImputer, SVDImputer, SVTImputer
from repro.baselines.tkcm import TKCMImputer
from repro.baselines.transformer import TransformerImputer
from repro.baselines.trmf import TRMFImputer
from repro.exceptions import ConfigError

_FACTORIES: Dict[str, Callable[..., BaseImputer]] = {
    "mean": MeanImputer,
    "interpolation": LinearInterpolationImputer,
    "locf": LOCFImputer,
    "svdimp": SVDImputer,
    "softimpute": SoftImputeImputer,
    "svt": SVTImputer,
    "cdrec": CDRecImputer,
    "trmf": TRMFImputer,
    "stmvl": STMVLImputer,
    "dynammo": DynaMMoImputer,
    "tkcm": TKCMImputer,
    "brits": BRITSImputer,
    "mrnn": MRNNImputer,
    "gpvae": GPVAEImputer,
    "transformer": TransformerImputer,
}


#: DeepMVI variant names (Section 5.5): ablation flags applied on top of the
#: provided config, plus the display name reported in result tables
DEEPMVI_VARIANTS: Dict[str, Dict[str, bool]] = {
    "deepmvi": {},
    "deepmvi1d": {"flatten_dimensions": True},
    "deepmvi-no-tt": {"use_temporal_transformer": False},
    "deepmvi-no-context": {"use_context_window": False},
    "deepmvi-no-kr": {"use_kernel_regression": False},
    "deepmvi-no-fg": {"use_fine_grained": False},
}

_DEEPMVI_DISPLAY_NAMES: Dict[str, str] = {
    "deepmvi": "DeepMVI",
    "deepmvi1d": "DeepMVI1D",
    "deepmvi-no-tt": "DeepMVI-NoTT",
    "deepmvi-no-context": "DeepMVI-NoContext",
    "deepmvi-no-kr": "DeepMVI-NoKR",
    "deepmvi-no-fg": "DeepMVI-NoFG",
}


def register_method(name: str, factory: Callable[..., BaseImputer]) -> None:
    """Register an additional imputation method under ``name``."""
    _FACTORIES[name.lower()] = factory


def list_methods() -> List[str]:
    """All registered method names, including the DeepMVI variants."""
    return sorted(list(_FACTORIES) + list(DEEPMVI_VARIANTS))


def create_imputer(name: str, **kwargs) -> BaseImputer:
    """Instantiate an imputation method by name.

    The DeepMVI variants are resolved lazily to avoid a circular import
    between the baselines and the core package.
    """
    key = name.lower()
    if key in DEEPMVI_VARIANTS:
        from repro.core.config import DeepMVIConfig
        from repro.core.imputer import DeepMVIImputer

        config = kwargs.pop("config", None) or DeepMVIConfig(**kwargs)
        flags = DEEPMVI_VARIANTS[key]
        if flags:
            config = config.ablated(**flags)
        imputer = DeepMVIImputer(config=config)
        imputer.name = _DEEPMVI_DISPLAY_NAMES[key]
        return imputer
    if key not in _FACTORIES:
        raise ConfigError(
            f"unknown method {name!r}; available: {', '.join(list_methods())}")
    return _FACTORIES[key](**kwargs)
