"""Replay recorded datasets as streams and score every served window.

This is the evaluation counterpart of :class:`~repro.streaming.StreamingService`:
it applies a missing-value scenario to a ground-truth dataset, feeds the
incomplete tensor through the windowed serving path, and scores each
completed window against the hidden truth — per-window MAE, per-window
latency, and end-to-end throughput (windows/sec).  Multi-stream replays
give each stream its own scenario seed, which is how the throughput
benchmark compares serial vs. process-pool serving on identical work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.data.datasets import load_dataset
from repro.data.missing import MissingScenario, apply_scenario
from repro.data.tensor import TimeSeriesTensor
from repro.evaluation.metrics import mae
from repro.streaming.service import StreamingService, StreamWindowResult
from repro.streaming.windows import WindowedStream

__all__ = ["ReplayReport", "WindowScore", "replay"]


@dataclass
class WindowScore:
    """One served window with its accuracy and cost."""

    stream_id: str
    window_index: int
    start: int
    stop: int
    mae: float
    latency_seconds: float
    refit: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ReplayReport:
    """Outcome of one stream replay."""

    rows: List[WindowScore] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    n_streams: int = 1
    workers: int = 1
    method: str = ""
    scenario: str = ""

    @property
    def windows(self) -> int:
        return len(self.rows)

    @property
    def failures(self) -> int:
        return sum(1 for row in self.rows if not row.ok)

    @property
    def refits(self) -> int:
        return sum(1 for row in self.rows if row.refit)

    @property
    def windows_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.windows / self.elapsed_seconds

    @property
    def mean_mae(self) -> float:
        """Mean of the finite per-window MAEs (nan when none are finite)."""
        scores = [row.mae for row in self.rows if np.isfinite(row.mae)]
        return float(np.mean(scores)) if scores else float("nan")

    def describe(self) -> str:
        return (f"{self.windows} windows over {self.n_streams} stream(s) in "
                f"{self.elapsed_seconds:.2f}s ({self.windows_per_second:.1f} "
                f"windows/sec, workers={self.workers}); mean MAE "
                f"{self.mean_mae:.3f}, {self.refits} refits, "
                f"{self.failures} failures")

    def to_record(self) -> Dict[str, object]:
        """JSON-safe summary (per-window rows included)."""
        return {
            "method": self.method,
            "scenario": self.scenario,
            "n_streams": self.n_streams,
            "workers": self.workers,
            "windows": self.windows,
            "failures": self.failures,
            "refits": self.refits,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "windows_per_second": round(self.windows_per_second, 3),
            "mean_mae": None if not np.isfinite(self.mean_mae)
            else round(self.mean_mae, 5),
            "rows": [{
                "stream": row.stream_id,
                "window": row.window_index,
                "span": [row.start, row.stop],
                "mae": None if not np.isfinite(row.mae) else round(row.mae, 5),
                "latency_seconds": round(row.latency_seconds, 5),
                "refit": row.refit,
                "ok": row.ok,
            } for row in self.rows],
        }


def _coerce_scenario(scenario: Union[str, MissingScenario]) -> MissingScenario:
    if isinstance(scenario, MissingScenario):
        return scenario
    return MissingScenario(str(scenario), {})


def _window_score(result: StreamWindowResult, truth: TimeSeriesTensor,
                  missing_mask: np.ndarray) -> WindowScore:
    """Score one served window on the scenario cells inside its span."""
    error = float("nan")
    if result.ok:
        mask_slice = missing_mask[..., result.start:result.stop]
        if mask_slice.sum() > 0:
            truth_slice = truth.slice_time(result.start, result.stop)
            error = mae(result.completed, truth_slice, mask_slice)
    return WindowScore(
        stream_id=result.stream_id,
        window_index=result.window_index,
        start=result.start,
        stop=result.stop,
        mae=error,
        latency_seconds=result.latency_seconds,
        refit=result.refit,
        error=result.error,
    )


def replay(dataset: Union[str, TimeSeriesTensor],
           method: str = "interpolation",
           scenario: Union[str, MissingScenario] = "drift_outage",
           window_size: int = 48, stride: Optional[int] = None,
           refit_every: int = 8, max_history: Optional[int] = 512,
           n_streams: int = 1, workers: int = 1,
           store_dir: Optional[str] = None, size: str = "tiny",
           seed: int = 0, service: Optional[StreamingService] = None,
           **method_kwargs) -> ReplayReport:
    """Replay a dataset as ``n_streams`` concurrent windowed streams.

    Each stream applies ``scenario`` to the ground truth with its own seed
    (``seed + k``), so concurrent streams carry distinct failure patterns
    of identical cost.  Returns a :class:`ReplayReport` with per-window MAE
    (scored only on the scenario's hidden cells inside each window's span),
    per-window latency and overall windows/sec.
    """
    truth = dataset if isinstance(dataset, TimeSeriesTensor) \
        else load_dataset(dataset, size=size, seed=seed)
    scenario = _coerce_scenario(scenario)

    svc = service or StreamingService(
        store_dir=store_dir, workers=workers,
        default_refit_every=refit_every, default_max_history=max_history)
    streams: Dict[str, WindowedStream] = {}
    masks: Dict[str, np.ndarray] = {}
    for k in range(max(1, n_streams)):
        stream_id = f"s{k}"
        incomplete, missing_mask = apply_scenario(truth, scenario,
                                                  seed=seed + k)
        streams[stream_id] = WindowedStream.from_tensor(
            incomplete, window_size=window_size, stride=stride)
        masks[stream_id] = missing_mask
        svc.open_stream(stream_id, method=method, refit_every=refit_every,
                        max_history=max_history, **method_kwargs)

    start = time.perf_counter()
    served = svc.run(streams)
    elapsed = time.perf_counter() - start

    report = ReplayReport(
        elapsed_seconds=elapsed, n_streams=len(streams),
        workers=svc.service.workers, method=method,
        scenario=scenario.describe())
    for stream_id in sorted(served):
        for result in served[stream_id]:
            report.rows.append(
                _window_score(result, truth, masks[stream_id]))
    return report
