"""Metrics registry tests: primitives, rendering, snapshot feeding."""

from __future__ import annotations

import pytest

from repro.api.telemetry import MetricsSnapshot
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    feed_snapshot,
)


class TestPrimitives:
    def test_counter_is_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_to_at_least_never_rewinds(self):
        counter = Counter("c")
        counter.set_to_at_least(10)
        counter.set_to_at_least(4)     # a re-fed older snapshot
        assert counter.value == 10

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        lines = list(histogram.render())
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 3' in lines
        assert 'h_bucket{le="+Inf"} 4' in lines
        assert "h_count 4" in lines
        assert any(line.startswith("h_sum") for line in lines)


class TestRegistry:
    def test_first_use_registers_then_reuses(self):
        registry = MetricsRegistry()
        first = registry.counter("served_total", "requests served")
        second = registry.counter("served_total")
        assert first is second
        assert first.name == "repro_served_total"

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("thing")

    def test_render_is_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("served_total", "requests served").inc(3)
        registry.gauge("queue_depth").set(7)
        text = registry.render()
        assert "# HELP repro_served_total requests served" in text
        assert "# TYPE repro_served_total counter" in text
        assert "repro_served_total 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 7" in text
        assert text.endswith("\n")

    def test_names_are_sanitised(self):
        registry = MetricsRegistry(prefix="")
        metric = registry.counter("shard-0.serve total")
        assert metric.name == "shard_0_serve_total"


class TestFeedSnapshot:
    def _snapshot(self, **overrides):
        base = dict(source="gateway", submitted=5, completed=4, qps=2.5,
                    latency_p95_seconds=0.25,
                    submitted_by_lane={"interactive": 3, "batch": 2},
                    extras={"fast_lane_fallbacks": 1})
        base.update(overrides)
        return MetricsSnapshot(**base)

    def test_scalars_become_source_prefixed_series(self):
        registry = MetricsRegistry()
        feed_snapshot(self._snapshot(), reg=registry)
        text = registry.render()
        assert "repro_gateway_submitted 5" in text
        assert "repro_gateway_qps 2.5" in text
        assert "repro_gateway_fast_lane_fallbacks 1" in text

    def test_counters_vs_gauges(self):
        registry = MetricsRegistry()
        feed_snapshot(self._snapshot(), reg=registry)
        # cumulative totals are counters, instantaneous values gauges
        assert registry.counter("gateway_submitted").value == 5
        assert registry.gauge("gateway_qps").value == 2.5
        assert registry.gauge("gateway_latency_p95_seconds").value == 0.25

    def test_refeeding_is_idempotent_and_rates_may_fall(self):
        registry = MetricsRegistry()
        feed_snapshot(self._snapshot(), reg=registry)
        feed_snapshot(self._snapshot(qps=1.0), reg=registry)
        assert registry.counter("gateway_submitted").value == 5
        assert registry.gauge("gateway_qps").value == 1.0

    def test_lane_dicts_fan_out(self):
        registry = MetricsRegistry()
        feed_snapshot(self._snapshot(), reg=registry)
        assert registry.gauge(
            "gateway_submitted_by_lane_interactive").value == 3

    def test_source_read_from_the_dataclass_field(self):
        # MetricsSnapshot's dict form omits "source" on purpose; the
        # feeder must still namespace by tier
        registry = MetricsRegistry()
        feed_snapshot(MetricsSnapshot(source="cluster", submitted=2),
                      reg=registry)
        assert "repro_cluster_submitted 2" in registry.render()

    def test_plain_dicts_are_accepted(self):
        registry = MetricsRegistry()
        feed_snapshot({"source": "streaming", "windows": 9}, reg=registry)
        assert registry.counter("streaming_windows").value == 9

    def test_bools_are_not_series(self):
        registry = MetricsRegistry()
        feed_snapshot({"source": "x", "alive": True}, reg=registry)
        assert "alive" not in registry.render()
