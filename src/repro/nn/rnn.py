"""Recurrent cells used by the BRITS and MRNN baselines."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, as_tensor


class GRUCell(Module):
    """A gated recurrent unit cell.

    Implements the standard GRU update::

        r = sigmoid(x W_xr + h W_hr + b_r)
        z = sigmoid(x W_xz + h W_hz + b_z)
        n = tanh(x W_xn + (r * h) W_hn + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.reset_x = Linear(input_dim, hidden_dim, rng=rng)
        self.reset_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.update_x = Linear(input_dim, hidden_dim, rng=rng)
        self.update_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.new_x = Linear(input_dim, hidden_dim, rng=rng)
        self.new_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    def init_state(self, batch_size: int) -> Tensor:
        """Return an all-zero hidden state for ``batch_size`` sequences."""
        return Tensor(np.zeros((batch_size, self.hidden_dim)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        x = as_tensor(x)
        hidden = as_tensor(hidden)
        reset = (self.reset_x(x) + self.reset_h(hidden)).sigmoid()
        update = (self.update_x(x) + self.update_h(hidden)).sigmoid()
        candidate = (self.new_x(x) + self.new_h(reset * hidden)).tanh()
        one = Tensor(np.ones_like(update.data))
        return (one - update) * candidate + update * hidden


class BidirectionalGRU(Module):
    """Run a forward and a backward GRU over a sequence and return both state tracks.

    Input is ``(B, T, input_dim)``; output is a pair of ``(B, T, hidden_dim)``
    tensors where the forward track at time ``t`` summarises ``x[:t]`` and the
    backward track summarises ``x[t+1:]`` — exactly the decomposition BRITS
    uses so that the value at ``t`` is never leaked into its own prediction.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.forward_cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.backward_cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        x = as_tensor(x)
        if x.data.ndim < 2:
            raise ValueError(
                f"input must be (..., T, input_dim), got shape {x.shape}")
        # Extra leading batch axes (e.g. a fused serving axis) fold into one
        # batch for the recurrence and unfold on the way out.
        lead = x.shape[:-2]
        length, input_dim = x.shape[-2], x.shape[-1]
        if len(lead) != 1:
            batch = int(np.prod(lead)) if lead else 1
            x = x.reshape(batch, length, input_dim)
        else:
            batch = lead[0]
        forward_states = []
        state = self.forward_cell.init_state(batch)
        for t in range(length):
            forward_states.append(state)
            state = self.forward_cell(x[:, t, :], state)
        backward_states: list = [None] * length
        state = self.backward_cell.init_state(batch)
        for t in reversed(range(length)):
            backward_states[t] = state
            state = self.backward_cell(x[:, t, :], state)
        forward_track = F.stack(forward_states, axis=1)
        backward_track = F.stack(backward_states, axis=1)
        if len(lead) != 1:
            forward_track = forward_track.reshape(
                lead + (length, self.hidden_dim))
            backward_track = backward_track.reshape(
                lead + (length, self.hidden_dim))
        return forward_track, backward_track
