"""Unit tests of the gateway's bounded two-lane request queue."""

import threading
import time

import pytest

from repro.api.requests import ImputeRequest
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
    ValidationError,
)
from repro.gateway.queue import GatewayFuture, QueuedRequest, RequestQueue


def entry(lane="interactive", group="g", deadline=None, request_id="r"):
    return QueuedRequest(
        request=ImputeRequest(model_id="m", request_id=request_id),
        future=GatewayFuture(request_id, lane),
        lane=lane, deadline=deadline, group=group)


class TestAdmission:
    def test_reject_policy_raises_when_full(self):
        queue = RequestQueue(max_depth=2, admission="reject")
        queue.put(entry())
        queue.put(entry())
        with pytest.raises(QueueFullError):
            queue.put(entry())
        assert queue.depth() == 2

    def test_block_policy_waits_for_space(self):
        queue = RequestQueue(max_depth=1, admission="block")
        queue.put(entry(group="a"))
        admitted = threading.Event()

        def producer():
            queue.put(entry(group="b"))
            admitted.set()

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()          # still blocked on a full queue
        batch = queue.next_batch(1, max_wait=0.0)
        assert len(batch) == 1
        thread.join(timeout=2.0)
        assert admitted.is_set()

    def test_block_policy_times_out(self):
        queue = RequestQueue(max_depth=1, admission="block")
        queue.put(entry())
        with pytest.raises(QueueFullError):
            queue.put(entry(), timeout=0.05)

    def test_closed_queue_rejects_new_entries(self):
        queue = RequestQueue(max_depth=4)
        queue.close()
        with pytest.raises(ServiceError):
            queue.put(entry())

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            RequestQueue(max_depth=0)
        with pytest.raises(ValidationError):
            RequestQueue(max_depth=1, admission="shrug")
        queue = RequestQueue(max_depth=1)
        with pytest.raises(ValidationError):
            queue.put(entry(lane="express"))


class TestScheduling:
    def test_interactive_served_first(self):
        queue = RequestQueue(max_depth=8)
        queue.put(entry(lane="batch", group="b", request_id="b0"))
        queue.put(entry(lane="interactive", group="i", request_id="i0"))
        (first,) = queue.next_batch(1, max_wait=0.0)
        assert first.lane == "interactive"

    def test_batch_lane_is_starvation_free(self):
        # A full interactive lane must not starve the batch lane: with
        # burst=2, the batch entry is served no later than the third pick.
        queue = RequestQueue(max_depth=16, interactive_burst=2)
        for index in range(6):
            queue.put(entry(lane="interactive", group="i",
                            request_id=f"i{index}"))
        queue.put(entry(lane="batch", group="b", request_id="b0"))
        order = [queue.next_batch(1, max_wait=0.0)[0].lane for _ in range(7)]
        assert order.index("batch") <= 2
        assert order.count("batch") == 1 and order.count("interactive") == 6

    def test_batch_assembly_groups_and_caps(self):
        queue = RequestQueue(max_depth=16)
        for index in range(3):
            queue.put(entry(group="a", request_id=f"a{index}"))
        queue.put(entry(group="b", request_id="b0"))
        queue.put(entry(group="a", request_id="a3"))
        batch = queue.next_batch(16, max_wait=0.0)
        # All four group-a entries fuse; the group-b entry stays queued.
        assert [e.future.request_id for e in batch] == \
            ["a0", "a1", "a2", "a3"]
        assert queue.depth() == 1
        (leftover,) = queue.next_batch(16, max_wait=0.0)
        assert leftover.group == "b"

    def test_batch_respects_max_batch_size(self):
        queue = RequestQueue(max_depth=16)
        for index in range(5):
            queue.put(entry(group="a", request_id=f"a{index}"))
        assert len(queue.next_batch(2, max_wait=0.0)) == 2
        assert queue.depth() == 3

    def test_batch_waits_for_stragglers(self):
        queue = RequestQueue(max_depth=16)
        queue.put(entry(group="a", request_id="a0"))

        def late_producer():
            time.sleep(0.03)
            queue.put(entry(group="a", request_id="a1"))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch = queue.next_batch(4, max_wait=0.5)
        thread.join()
        assert [e.future.request_id for e in batch] == ["a0", "a1"]

    def test_empty_queue_times_out(self):
        queue = RequestQueue(max_depth=4)
        start = time.perf_counter()
        assert queue.next_batch(4, max_wait=0.0, timeout=0.05) == []
        assert time.perf_counter() - start < 1.0


class TestDeadlines:
    def test_expired_entry_fails_with_deadline_error(self):
        queue = RequestQueue(max_depth=4)
        expired = entry(deadline=time.perf_counter() - 0.01,
                        request_id="late")
        fresh = entry(request_id="fresh")
        queue.put(expired)
        queue.put(fresh)
        batch = queue.next_batch(4, max_wait=0.0)
        assert [e.future.request_id for e in batch] == ["fresh"]
        with pytest.raises(DeadlineExceededError):
            expired.future.result(timeout=0)

    def test_expiry_callback_fires(self):
        expired_entries = []
        queue = RequestQueue(max_depth=4, on_expired=expired_entries.append)
        queue.put(entry(deadline=time.perf_counter() - 0.01))
        assert queue.next_batch(4, max_wait=0.0, timeout=0.05) == []
        assert len(expired_entries) == 1


class TestDrain:
    def test_drain_empties_both_lanes(self):
        queue = RequestQueue(max_depth=8)
        queue.put(entry(lane="interactive"))
        queue.put(entry(lane="batch"))
        drained = queue.drain()
        assert len(drained) == 2 and queue.depth() == 0
