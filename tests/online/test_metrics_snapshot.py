"""The unified MetricsSnapshot surface and the zero-traffic rate guards."""

import json

import numpy as np
import pytest

from repro.api import ImputationService, MetricsSnapshot
from repro.api.telemetry import rate
from repro.data.dimensions import Dimension
from repro.data.tensor import TimeSeriesTensor
from repro.gateway import Gateway
from repro.gateway.metrics import GatewayMetrics
from repro.streaming import StreamingService, WindowedStream


class TestRateGuard:
    def test_zero_denominator_is_zero_not_a_crash(self):
        # The historical bug: a stats() call before any request completed
        # divided by zero.  Cold snapshots must be all zeros.
        assert rate(5, 0) == 0.0
        assert rate(0, 0) == 0.0
        assert rate(3, 0.0) == 0.0

    def test_live_denominator_divides(self):
        assert rate(1, 4) == 0.25


class TestMappingProtocol:
    def test_snapshot_indexes_like_the_legacy_dict(self):
        snap = MetricsSnapshot(qps=2.5, completed=10)
        assert snap["qps"] == 2.5
        assert snap["completed"] == 10
        assert snap.get("nope", "default") == "default"
        with pytest.raises(KeyError):
            snap["nope"]

    def test_optional_sections_only_appear_when_set(self):
        cold = MetricsSnapshot()
        assert "shards" not in cold
        assert "model_cache" not in cold
        assert cold["submitted_by_lane"] == {}  # core gateway key, always
        warm = MetricsSnapshot(shards={"shard-0": {}},
                               model_cache={"hit_rate": 0.5})
        assert warm["shards"] == {"shard-0": {}}
        assert warm["model_cache"]["hit_rate"] == 0.5

    def test_extras_merge_flat(self):
        snap = MetricsSnapshot(extras={"streams": 3, "refits": 1})
        assert snap["streams"] == 3
        assert dict(snap)["refits"] == 1

    def test_json_round_trip(self):
        snap = MetricsSnapshot(source="gateway", completed=4, qps=1.5)
        assert json.loads(snap.to_json()) == snap.to_dict()

    def test_iteration_matches_dict_form(self):
        snap = MetricsSnapshot(extras={"z": 1})
        assert list(snap) == list(snap.to_dict())
        assert len(snap) == len(snap.to_dict())
        assert set(snap.keys()) == set(snap.to_dict())


def tiny_tensor():
    values = np.arange(4 * 24, dtype=float).reshape(4, 24)
    mask = np.ones_like(values)
    mask[1, 3:6] = 0
    return TimeSeriesTensor(values=values,
                            dimensions=[Dimension.categorical("s", 4)],
                            mask=mask)


class TestColdSnapshots:
    def test_gateway_metrics_cold_snapshot_is_all_zeros(self):
        snap = GatewayMetrics().snapshot()
        assert isinstance(snap, MetricsSnapshot)
        assert snap["qps"] == 0.0
        assert snap["fusion_rate"] == 0.0
        assert snap["fast_path_hit_rate"] == 0.0
        assert snap["mean_batch_size"] == 0.0

    def test_streaming_cold_stats_are_all_zeros(self):
        svc = StreamingService()
        snap = svc.stats()
        assert snap.source == "streaming"
        assert snap["qps"] == 0.0
        assert snap["fusion_rate"] == 0.0
        assert snap["completed"] == 0
        assert snap["streams"] == 0

    def test_gateway_cold_stats_before_any_traffic(self):
        service = ImputationService()
        gateway = Gateway(service)
        snap = gateway.stats()       # worker pool never started
        assert snap["qps"] == 0.0
        assert snap["completed"] == 0


class TestObsWireCompat:
    """The new obs-era fields must never disturb the legacy wire shape."""

    def test_legacy_key_order_is_preserved_with_obs_extras(self):
        snap = GatewayMetrics().snapshot()
        keys = list(snap.to_dict())
        # the historical core keys come first, in emission order; extras
        # (fast_lane_fallbacks and friends) strictly after them
        assert tuple(keys[:len(MetricsSnapshot._CORE_KEYS)]) == \
            MetricsSnapshot._CORE_KEYS
        assert keys.index("fast_lane_fallbacks") >= \
            len(MetricsSnapshot._CORE_KEYS)

    def test_to_dict_round_trips_through_json(self):
        snap = GatewayMetrics().snapshot()
        assert json.loads(snap.to_json()) == snap.to_dict()

    def test_cold_snapshot_obs_counters_are_zero(self):
        snap = GatewayMetrics().snapshot()
        assert snap["fast_lane_fallbacks"] == 0

    def test_fallback_counter_rides_in_extras(self):
        metrics = GatewayMetrics()
        metrics.record_fast_lane_fallback()
        metrics.record_fast_lane_fallback()
        snap = metrics.snapshot()
        assert snap.extras["fast_lane_fallbacks"] == 2
        assert snap["fast_lane_fallbacks"] == 2


class TestLiveSnapshots:
    def test_streaming_stats_count_served_windows(self):
        svc = StreamingService()
        svc.open_stream("s", method="mean")
        stream = WindowedStream.from_tensor(tiny_tensor(), window_size=8,
                                            stride=8)
        for window in stream:
            svc.push("s", window)
        while sum(len(s.pending) for s in svc._streams.values()):
            svc.step()
        snap = svc.stats()
        assert snap["completed"] == 3
        assert snap["failed"] == 0
        assert snap["qps"] > 0.0
        assert snap["streams"] == 1
        assert snap["latency_p50_seconds"] >= 0.0

    def test_all_three_tiers_share_the_core_keys(self):
        streaming = StreamingService().stats()
        gateway = GatewayMetrics().snapshot()
        for key in MetricsSnapshot._CORE_KEYS:
            assert key in streaming
            assert key in gateway
