"""Tests of the TimeSeriesTensor container."""

import numpy as np
import pytest

from repro.data.dimensions import Dimension
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import DimensionError, ShapeError


def _make(values, mask=None, dims=None, name="t"):
    values = np.asarray(values, dtype=float)
    if dims is None:
        dims = [Dimension.categorical("series", values.shape[0])]
    return TimeSeriesTensor(values=values, dimensions=dims, mask=mask, name=name)


class TestConstruction:
    def test_basic_properties(self, tiny_tensor):
        assert tiny_tensor.n_dims == 1
        assert tiny_tensor.n_time == 20
        assert tiny_tensor.n_series == 3
        assert tiny_tensor.shape == (3, 20)

    def test_mask_defaults_to_finite(self):
        values = np.array([[1.0, np.nan, 3.0]])
        tensor = _make(values)
        np.testing.assert_allclose(tensor.mask, [[1.0, 0.0, 1.0]])

    def test_shape_mismatch_with_dimensions_rejected(self):
        with pytest.raises(ShapeError):
            TimeSeriesTensor(values=np.zeros((3, 5)),
                             dimensions=[Dimension.categorical("s", 4)])

    def test_wrong_rank_rejected(self):
        with pytest.raises(ShapeError):
            TimeSeriesTensor(values=np.zeros((3, 4, 5)),
                             dimensions=[Dimension.categorical("s", 3)])

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            _make(np.zeros((2, 4)), mask=np.ones((2, 3)))

    def test_non_binary_mask_rejected(self):
        with pytest.raises(ShapeError):
            _make(np.zeros((1, 3)), mask=np.array([[0.5, 1.0, 1.0]]))

    def test_missing_fraction(self, tiny_tensor):
        assert tiny_tensor.missing_fraction == pytest.approx(4 / 60)

    def test_missing_and_available_indices_partition_cells(self, tiny_tensor):
        total = tiny_tensor.missing_indices().shape[0] + tiny_tensor.available_indices().shape[0]
        assert total == 60

    def test_repr_contains_name_and_dims(self, tiny_tensor):
        text = repr(tiny_tensor)
        assert "tiny" in text and "sensor[3]" in text


class TestMatrixViews:
    def test_to_matrix_roundtrip(self, small_multidim_panel):
        matrix, mask = small_multidim_panel.to_matrix()
        assert matrix.shape == (12, 96)
        rebuilt = small_multidim_panel.with_matrix(matrix)
        np.testing.assert_allclose(rebuilt.values, small_multidim_panel.values)

    def test_to_matrix_returns_copies(self, tiny_tensor):
        matrix, _ = tiny_tensor.to_matrix()
        matrix[0, 0] = 999.0
        assert tiny_tensor.values[0, 0] != 999.0

    def test_with_matrix_rejects_wrong_shape(self, tiny_tensor):
        with pytest.raises(ShapeError):
            tiny_tensor.with_matrix(np.zeros((2, 20)))

    def test_series_index_table_multidim(self, small_multidim_panel):
        table = small_multidim_panel.series_index_table()
        assert table.shape == (12, 2)
        # C-order flattening: second dimension varies fastest.
        np.testing.assert_array_equal(table[0], [0, 0])
        np.testing.assert_array_equal(table[1], [0, 1])
        np.testing.assert_array_equal(table[3], [1, 0])

    def test_copy_is_independent(self, tiny_tensor):
        clone = tiny_tensor.copy()
        clone.values[0, 0] = 123.0
        assert tiny_tensor.values[0, 0] != 123.0


class TestMissingAndFill:
    def test_with_missing_hides_cells(self, small_panel):
        missing = np.zeros_like(small_panel.values)
        missing[0, :10] = 1
        hidden = small_panel.with_missing(missing)
        assert hidden.mask[0, :10].sum() == 0
        assert np.isnan(hidden.values[0, :10]).all()
        # untouched elsewhere
        assert hidden.mask[1:].sum() == small_panel.mask[1:].sum()

    def test_with_missing_shape_check(self, small_panel):
        with pytest.raises(ShapeError):
            small_panel.with_missing(np.zeros((2, 2)))

    def test_fill_preserves_observed_values(self, tiny_tensor):
        imputed = np.full_like(tiny_tensor.values, -7.0)
        filled = tiny_tensor.fill(imputed)
        observed = tiny_tensor.mask == 1
        np.testing.assert_allclose(filled.values[observed], tiny_tensor.values[observed])
        np.testing.assert_allclose(filled.values[~observed], -7.0)
        assert filled.missing_fraction == 0.0

    def test_fill_shape_check(self, tiny_tensor):
        with pytest.raises(ShapeError):
            tiny_tensor.fill(np.zeros((1, 2)))


class TestStatistics:
    def test_observed_mean_std_ignores_missing(self):
        values = np.array([[1.0, np.nan, 3.0]])
        tensor = _make(values)
        mean, std = tensor.observed_mean_std()
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_normalised_roundtrip(self, small_panel):
        normalised, mean, std = small_panel.normalised()
        restored = normalised.values * std + mean
        np.testing.assert_allclose(restored, small_panel.values)

    def test_normalised_has_zero_mean_unit_std(self, small_panel):
        normalised, _, _ = small_panel.normalised()
        observed = normalised.values[normalised.mask == 1]
        assert abs(observed.mean()) < 1e-9
        assert observed.std() == pytest.approx(1.0)

    def test_degenerate_std_falls_back_to_one(self):
        tensor = _make(np.full((1, 4), 3.0))
        _, std = tensor.observed_mean_std()
        assert std == 1.0

    def test_aggregate_over_drops_missing(self):
        values = np.array([[1.0, 2.0], [3.0, np.nan]])
        tensor = _make(values)
        aggregate = tensor.aggregate_over(axis=0)
        np.testing.assert_allclose(aggregate, [2.0, 2.0])

    def test_aggregate_over_all_missing_is_nan(self):
        values = np.array([[np.nan], [np.nan]])
        tensor = _make(values)
        assert np.isnan(tensor.aggregate_over(axis=0)[0])

    def test_aggregate_over_invalid_axis(self, tiny_tensor):
        with pytest.raises(DimensionError):
            tiny_tensor.aggregate_over(axis=1)

    def test_aggregate_over_multidim_shape(self, small_multidim_panel):
        aggregate = small_multidim_panel.aggregate_over(axis=0)
        assert aggregate.shape == (3, 96)
