"""Tests of the missing-value scenario generators."""

import numpy as np
import pytest

from repro.data.missing import (
    MissingScenario,
    apply_scenario,
    blackout,
    list_scenarios,
    mcar,
    mcar_points,
    miss_disj,
    miss_over,
)
from repro.exceptions import ScenarioError


def _runs(row):
    """Lengths of contiguous 1-runs in a 0/1 vector."""
    lengths, run = [], 0
    for value in row:
        if value == 1:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return lengths


class TestMCAR:
    def test_only_selected_fraction_of_series_affected(self, small_panel, rng):
        mask = mcar(small_panel, incomplete_fraction=0.5, block_size=5, rng=rng)
        flat = mask.reshape(small_panel.n_series, -1)
        affected = (flat.sum(axis=1) > 0).sum()
        assert affected == 4  # 50% of 8 series

    def test_missing_rate_respected(self, small_panel, rng):
        mask = mcar(small_panel, incomplete_fraction=1.0, missing_rate=0.1,
                    block_size=5, rng=rng)
        flat = mask.reshape(small_panel.n_series, -1)
        for row in flat:
            assert 0 < row.sum() <= 0.15 * small_panel.n_time

    def test_blocks_have_requested_size(self, small_panel, rng):
        mask = mcar(small_panel, incomplete_fraction=1.0, block_size=6, rng=rng)
        flat = mask.reshape(small_panel.n_series, -1)
        for row in flat:
            for run in _runs(row):
                assert run % 6 == 0  # runs are unions of size-6 blocks

    def test_never_hides_already_missing_cells(self, tiny_tensor, rng):
        mask = mcar(tiny_tensor, incomplete_fraction=1.0, block_size=3, rng=rng)
        assert np.all(mask[tiny_tensor.mask == 0] == 0)

    def test_rejects_block_larger_than_series(self, tiny_tensor, rng):
        with pytest.raises(ScenarioError):
            mcar(tiny_tensor, block_size=50, rng=rng)

    def test_rejects_bad_fraction(self, tiny_tensor, rng):
        with pytest.raises(ScenarioError):
            mcar(tiny_tensor, incomplete_fraction=0.0, rng=rng)
        with pytest.raises(ScenarioError):
            mcar(tiny_tensor, missing_rate=1.5, rng=rng)

    def test_points_variant_single_cells(self, small_panel, rng):
        mask = mcar_points(small_panel, block_size=1, rng=rng)
        flat = mask.reshape(small_panel.n_series, -1)
        assert flat.sum() > 0


class TestDisjointAndOverlap:
    def test_miss_disj_blocks_do_not_overlap(self, small_panel):
        mask = miss_disj(small_panel).reshape(small_panel.n_series, -1)
        # At any time index at most one series is missing.
        assert mask.sum(axis=0).max() <= 1

    def test_miss_disj_block_size(self, small_panel):
        mask = miss_disj(small_panel).reshape(small_panel.n_series, -1)
        block = small_panel.n_time // small_panel.n_series
        for row in mask:
            assert row.sum() == block

    def test_miss_over_blocks_overlap_neighbours(self, small_panel):
        mask = miss_over(small_panel).reshape(small_panel.n_series, -1)
        block = small_panel.n_time // small_panel.n_series
        # Series 0 and 1 share the second half of series 0's block.
        shared = (mask[0] * mask[1]).sum()
        assert shared == block

    def test_miss_over_last_series_has_single_block(self, small_panel):
        mask = miss_over(small_panel).reshape(small_panel.n_series, -1)
        block = small_panel.n_time // small_panel.n_series
        assert mask[-1].sum() == block

    def test_incomplete_fraction_limits_series(self, small_panel):
        mask = miss_disj(small_panel, incomplete_fraction=0.25)
        flat = mask.reshape(small_panel.n_series, -1)
        assert (flat.sum(axis=1) > 0).sum() == 2


class TestBlackout:
    def test_same_range_missing_everywhere(self, small_panel):
        mask = blackout(small_panel, block_size=12).reshape(small_panel.n_series, -1)
        start = int(round(0.05 * small_panel.n_time))
        for row in mask:
            np.testing.assert_array_equal(np.where(row == 1)[0],
                                          np.arange(start, start + 12))

    def test_block_size_larger_than_series_rejected(self, small_panel):
        with pytest.raises(ScenarioError):
            blackout(small_panel, block_size=small_panel.n_time + 1)

    def test_start_fraction_clipped(self, small_panel):
        mask = blackout(small_panel, block_size=20, start_fraction=0.99)
        flat = mask.reshape(small_panel.n_series, -1)
        assert flat.sum() == 20 * small_panel.n_series


class TestScenarioWrapper:
    def test_unknown_name_rejected(self):
        with pytest.raises(ScenarioError):
            MissingScenario("bogus")

    def test_generate_is_deterministic_per_seed(self, small_panel):
        scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5})
        a = scenario.generate(small_panel, seed=3)
        b = scenario.generate(small_panel, seed=3)
        c = scenario.generate(small_panel, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_describe_mentions_params(self):
        scenario = MissingScenario("blackout", {"block_size": 10})
        assert "blackout" in scenario.describe()
        assert "block_size=10" in scenario.describe()

    def test_apply_scenario_returns_consistent_pair(self, small_panel):
        scenario = MissingScenario("miss_disj")
        incomplete, mask = apply_scenario(small_panel, scenario, seed=1)
        assert incomplete.mask[mask == 1].sum() == 0
        np.testing.assert_allclose(
            incomplete.values[mask == 0], small_panel.values[mask == 0])

    def test_list_scenarios_contains_all_five(self):
        names = list_scenarios()
        for expected in ["mcar", "mcar_points", "miss_disj", "miss_over", "blackout"]:
            assert expected in names
