"""Tests of the LRU model cache and its ModelStore integration."""

import threading

import numpy as np
import pytest

from repro.api import ImputationService, LRUModelCache, ModelStore
from repro.baselines.simple import MeanImputer
from repro.exceptions import ValidationError


class TestLRUModelCache:
    def test_unbounded_by_default(self):
        cache = LRUModelCache()
        for index in range(100):
            cache.put(f"m{index}", index)
        assert len(cache) == 100
        assert cache.stats()["evictions"] == 0

    def test_evicts_least_recently_used(self):
        cache = LRUModelCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")                 # refresh a: b is now the LRU tail
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_hit_miss_accounting(self):
        cache = LRUModelCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        # Presence probes must not distort the hit rate.
        assert "a" in cache
        assert cache.stats()["hits"] == 1

    def test_pop_and_clear(self):
        cache = LRUModelCache()
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a", "gone") == "gone"
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUModelCache(maxsize=0)

    def test_thread_safety_smoke(self):
        cache = LRUModelCache(maxsize=8)
        errors = []

        def worker(worker_index):
            try:
                for index in range(200):
                    key = f"m{(worker_index * 7 + index) % 16}"
                    cache.put(key, index)
                    cache.get(key)
            except Exception as error:     # pragma: no cover - fail loud
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


class TestModelStoreEviction:
    def _fitted(self, tensor):
        return MeanImputer().fit(tensor)

    def test_bound_requires_directory(self):
        with pytest.raises(ValidationError):
            ModelStore(max_cached_models=2)
        with pytest.raises(ValidationError):
            ImputationService(max_cached_models=2)

    def test_evicted_model_reloads_from_disk(self, tmp_path, small_panel):
        store = ModelStore(str(tmp_path), max_cached_models=2)
        for index in range(3):
            store.put(f"model-{index}", self._fitted(small_panel),
                      method="mean")
        stats = store.cache_stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        # The evicted model is still servable — cold-loaded from its
        # artifact — and every id remains listed.
        assert sorted(store.list_models()) == \
            ["model-0", "model-1", "model-2"]
        reloaded = store.get("model-0")
        completed = reloaded.impute(small_panel)
        np.testing.assert_array_equal(completed.values, small_panel.values)
        # Reloading inserted model-0 back into the cache, evicting another.
        assert store.cache_stats()["size"] == 2

    def test_hot_models_never_touch_disk(self, tmp_path, small_panel):
        store = ModelStore(str(tmp_path), max_cached_models=2)
        store.put("hot", self._fitted(small_panel), method="mean")
        before = store.cache_stats()["misses"]
        for _ in range(5):
            store.get("hot")
        stats = store.cache_stats()
        assert stats["misses"] == before
        assert stats["hits"] >= 5

    def test_service_passes_bound_through(self, tmp_path, small_panel):
        service = ImputationService(store_dir=str(tmp_path),
                                    max_cached_models=1)
        first = service.fit(small_panel, method="mean")
        second = service.fit(small_panel, method="interpolation")
        assert service.store.cache_stats()["size"] == 1
        # Both models still serve (one via cold reload).
        assert service.impute(small_panel, model_id=first).completed \
            is not None
        assert service.impute(small_panel, model_id=second).completed \
            is not None
        assert service.describe()["model_cache"]["evictions"] >= 1
