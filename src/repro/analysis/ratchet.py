"""Type-coverage ratchet over mypy: counts may shrink, never grow.

The repo is typed gradually: some modules are clean, some carry historic
errors.  A plain ``mypy src/repro`` gate would force fixing everything at
once; no gate at all lets coverage rot.  The ratchet holds the line
instead:

* ``tools/mypy_baseline.json`` records, per module (file), the number of
  mypy errors it is *allowed* to have;
* a module reporting **more** errors than its allowance fails CI, with
  the offending lines printed;
* a module reporting **fewer** errors auto-shrinks the baseline in place
  — the improvement is captured and defended, commit the tightened file;
* a baseline marked ``"bootstrapped": false`` (or a missing file) is
  (re)generated from the current mypy run and exits 0 — this is how the
  baseline is first created in an environment that has mypy (CI does;
  fully-offline dev boxes may not).

Parsing is intentionally tolerant: any line shaped like
``path:line: error: message`` counts, everything else (notes, summary
lines) is ignored.  ``--mypy-output FILE`` feeds a pre-recorded report,
which keeps the ratchet itself testable without mypy installed.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "parse_mypy_output",
    "compare_to_baseline",
    "load_baseline",
    "write_baseline",
    "main",
]

ERROR_LINE = re.compile(r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?: error:")

#: the lenient flag set the repo types gradually under (mirrors ci.yml)
MYPY_FLAGS = (
    "--ignore-missing-imports",
    "--implicit-optional",
    "--no-strict-optional",
    "--follow-imports=silent",
)


def parse_mypy_output(text: str) -> Dict[str, int]:
    """Per-module error counts from raw mypy stdout."""
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        match = ERROR_LINE.match(line.strip())
        if match:
            module = Path(match.group("path")).as_posix()
            counts[module] = counts.get(module, 0) + 1
    return dict(sorted(counts.items()))


def load_baseline(path) -> Tuple[Dict[str, int], bool]:
    """Returns ``(module -> allowed count, bootstrapped)``."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}, False
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    modules = {str(key): int(value)
               for key, value in payload.get("modules", {}).items()}
    return modules, bool(payload.get("bootstrapped", False))


def write_baseline(path, counts: Dict[str, int]) -> None:
    payload = {
        "_comment": "mypy error-count ratchet: per-module allowed "
                    "maximums.  CI fails when a module's count grows; "
                    "shrinks are written back automatically — commit the "
                    "tightened file.  'bootstrapped: false' regenerates "
                    "from the next run (tools/mypy_ratchet.py).",
        "bootstrapped": True,
        "total": sum(counts.values()),
        "modules": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def compare_to_baseline(counts: Dict[str, int],
                        baseline: Dict[str, int],
                        ) -> Tuple[Dict[str, Tuple[int, int]],
                                   Dict[str, Tuple[int, int]]]:
    """Split modules into (grown, shrunk) vs their allowances.

    Modules absent from the baseline have an implicit allowance of 0 (new
    code must be clean); baseline modules now error-free count as shrunk.
    """
    grown: Dict[str, Tuple[int, int]] = {}
    shrunk: Dict[str, Tuple[int, int]] = {}
    for module, count in counts.items():
        allowed = baseline.get(module, 0)
        if count > allowed:
            grown[module] = (count, allowed)
        elif count < allowed:
            shrunk[module] = (count, allowed)
    for module, allowed in baseline.items():
        if allowed > 0 and module not in counts:
            shrunk[module] = (0, allowed)
    return grown, shrunk


def run_mypy(paths: List[str]) -> str:
    """Run mypy out of process; returns its stdout (exit code ignored —
    the ratchet, not mypy's own status, decides pass/fail)."""
    command = [sys.executable, "-m", "mypy", *MYPY_FLAGS, *paths]
    try:
        proc = subprocess.run(command, capture_output=True, text=True,
                              check=False)
    except OSError as exc:
        raise SystemExit(f"could not execute mypy: {exc}")
    if proc.returncode not in (0, 1):
        # 2 = mypy usage/crash: surface it instead of treating the empty
        # report as "zero errors everywhere".
        raise SystemExit(
            f"mypy exited {proc.returncode}:\n{proc.stdout}{proc.stderr}")
    return proc.stdout


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="mypy error-count ratchet (grow = fail, "
                    "shrink = auto-tighten)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="paths handed to mypy (default: src/repro)")
    parser.add_argument("--baseline", default="tools/mypy_baseline.json")
    parser.add_argument("--mypy-output", default=None,
                        help="read a pre-recorded mypy report instead of "
                             "running mypy (testing / offline)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run and exit 0")
    args = parser.parse_args(argv)

    if args.mypy_output:
        output = Path(args.mypy_output).read_text(encoding="utf-8")
    else:
        output = run_mypy(list(args.paths))
    counts = parse_mypy_output(output)
    total = sum(counts.values())

    baseline, bootstrapped = load_baseline(args.baseline)
    if args.update or not bootstrapped:
        write_baseline(args.baseline, counts)
        reason = "--update" if args.update else "bootstrap"
        print(f"mypy-ratchet: baseline written ({reason}): {total} errors "
              f"across {len(counts)} modules -> {args.baseline}")
        if not args.update:
            print("mypy-ratchet: commit the generated baseline to turn "
                  "the ratchet on")
        return 0

    grown, shrunk = compare_to_baseline(counts, baseline)
    if grown:
        print(f"mypy-ratchet: FAIL — {len(grown)} module(s) grew past "
              "their allowance:")
        for module, (count, allowed) in sorted(grown.items()):
            print(f"  {module}: {count} errors (allowed {allowed})")
            for line in output.splitlines():
                if line.startswith(module + ":") and " error: " in line:
                    print(f"    {line}")
        return 1
    if shrunk:
        merged = dict(baseline)
        for module, (count, _) in shrunk.items():
            if count:
                merged[module] = count
            else:
                merged.pop(module, None)
        write_baseline(args.baseline, merged)
        print(f"mypy-ratchet: {len(shrunk)} module(s) improved — baseline "
              f"tightened in place ({args.baseline}); commit it")
        for module, (count, allowed) in sorted(shrunk.items()):
            print(f"  {module}: {allowed} -> {count}")
        return 0
    print(f"mypy-ratchet: OK — {total} errors, all within the baseline "
          f"({len(counts)} modules with findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
