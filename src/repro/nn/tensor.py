"""Reverse-mode autograd tensor.

The :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
applied to it so that gradients can be computed with :meth:`Tensor.backward`.
The implementation is deliberately small: only the operations needed by the
models in this repository are provided, and all of them handle numpy
broadcasting correctly by summing gradients over broadcast axes.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]


class _GradMode(threading.local):
    """Per-thread grad-recording flag.

    Thread-local rather than module-global: the serving gateway runs
    ``no_grad`` forward passes on worker threads concurrently with trainer
    threads, and a shared flag would let one thread's ``no_grad`` exit
    silently re-enable (or disable) recording in the middle of another
    thread's forward pass.
    """

    enabled = True


_GRAD_MODE = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient-tape recording (this thread)."""
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like value; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate ``grad`` (default: ones) through the graph."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents_iter = stack[-1]
                advanced = False
                for parent in parents_iter:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                    if a.ndim == 1:
                        ga = grad * b
                    self._accumulate(_unbroadcast(ga, a.shape))
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.multiply.outer(a, grad) if b.ndim > 1 else a * grad
                    if b.ndim == 1:
                        gb = a * grad
                    other._accumulate(_unbroadcast(gb, b.shape))
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                    other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 0:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(np.swapaxes(self.data, axis1, axis2), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions and elementwise functions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                            (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims),
                            (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(np.abs(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (passes existing tensors through)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
