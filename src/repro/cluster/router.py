"""Cluster router: the service's ``submit()/gather()`` surface over shards.

:class:`ClusterRouter` starts N shard worker processes, places model ids
on a consistent-hash ring, and forwards traffic over the shard socket
protocol.  It is deliberately shaped like
:class:`~repro.api.service.ImputationService` — ``fit`` / ``impute`` /
``submit`` / ``gather`` / ``list_models`` and a ``store`` attribute — so
the serving :class:`~repro.gateway.Gateway` can front a whole cluster
unchanged (``Gateway(service=router)``).

Failure handling is where the durability work pays off: when a shard
connection dies mid-call, the router restarts the shard over its durable
directory and **resends the same request ids**.  The shard's journal
replay plus the exactly-once result ledger make the resend safe — every
request is answered exactly once no matter where the kill landed
(:mod:`repro.cluster.store`).

Analytics (:meth:`ClusterRouter.analytics`) attach every shard's SQLite
journal and run the window-function queries over the union, so
p99-over-time, per-model QPS and fusion trends come straight from the
durable log rather than in-process counters.
"""

from __future__ import annotations

import dataclasses
import socket
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.api.refs import ModelRef
from repro.api.requests import FitRequest, ImputeRequest, ImputeResult
from repro.api.service import TensorLike, as_tensor, coerce_impute_request
from repro.api.telemetry import MetricsSnapshot
from repro.api.versioning import VersionRegistry
from repro.cluster.ring import HashRing
from repro.cluster.shard import (
    ShardHandle,
    recv_message,
    send_message,
    start_shard,
)
from repro.cluster.store import DB_FILENAME, cluster_analytics
from repro.exceptions import ServiceError, ValidationError
from repro.obs import trace as obs_trace

__all__ = ["ClusterRouter", "RemoteModel", "ShardClient"]


class ShardClient:
    """One persistent length-prefixed connection to a shard."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        return self._sock

    def call(self, payload: Dict) -> Dict:
        """One request/reply round trip; raises on transport failure."""
        sock = self._connect()
        send_message(sock, payload)
        reply = recv_message(sock)
        if reply is None:
            raise ConnectionError(
                f"shard at port {self.port} closed the connection")
        return reply

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None


class RemoteModel:
    """Gateway-facing proxy for a model living on a shard.

    Quacks just enough like a fitted imputer for the gateway's serving
    path: ``impute_many`` (one fused ``serve`` RPC for the whole batch —
    the router-side analogue of a fused forward call), ``impute``, and
    ``last_impute_info`` so fusion/fast-path flags flow into gateway
    telemetry.  Deliberately *not* a ``BaseImputer`` subclass: defining
    its own ``impute_many`` is what routes gateway batches through the
    single-RPC path.
    """

    name = "remote"

    def __init__(self, router: "ClusterRouter", model_id: str) -> None:
        self._router = router
        self.model_id = model_id
        #: one entry per tensor of the most recent serve, mirroring
        #: DeepMVIImputer's telemetry contract
        self.last_impute_info: List[Dict[str, object]] = []

    def impute_many(self, tensors: Sequence) -> List:
        results = self._router._serve_remote(self.model_id, list(tensors))
        self.last_impute_info = [
            {"fast_path": result.fast_path, "fused": result.fused}
            for result in results]
        return [result.completed for result in results]

    def serve_requests(self, requests: Sequence[ImputeRequest]) -> List:
        """Serve full requests, carrying their trace contexts to the shard.

        The trace-aware sibling of :meth:`impute_many`:
        ``execute_serving_batch`` prefers it when present, so a traced
        gateway batch keeps its contexts across the RPC boundary instead
        of being stripped down to bare tensors.  The router still mints
        its own request ids — gateway ids are per-gateway counters, not
        the globally-unique keys the exactly-once ledger needs.
        """
        results = self._router._serve_remote(
            self.model_id,
            [request.data for request in requests],
            traces=[request.trace for request in requests])
        self.last_impute_info = [
            {"fast_path": result.fast_path, "fused": result.fused}
            for result in results]
        return [result.completed for result in results]

    def impute(self, tensor=None):
        return self.impute_many([tensor])[0]


class ClusterModelStore:
    """``ModelStore``-shaped façade over the cluster, for the gateway.

    ``get``/``peek`` hand out :class:`RemoteModel` proxies; membership and
    listings ask the owning shard over the wire (memoised — model ids are
    immutable once fitted); cache and fast-path telemetry aggregate the
    per-shard stores.
    """

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router
        #: no artifact directory: the artifacts live in the shards' SQLite
        self.directory = None
        self._remote_models: Dict[str, RemoteModel] = {}
        self._known: set = set()

    def __contains__(self, model_id: str) -> bool:
        if model_id in self._known:
            return True
        try:
            owner = self._router.ring.assign(model_id)
            reply = self._router._call(owner, {"op": "has_model",
                                               "model_id": model_id})
        except (ServiceError, ConnectionError, OSError, LookupError):
            return False
        if reply.get("exists"):
            self._known.add(model_id)
            return True
        return False

    def get(self, model_id: str) -> RemoteModel:
        if model_id not in self:
            raise ServiceError(f"unknown model id {model_id!r}; known: "
                               + (", ".join(self._router.list_models())
                                  or "<none>"))
        proxy = self._remote_models.get(model_id)
        if proxy is None:
            proxy = self._remote_models[model_id] = RemoteModel(
                self._router, model_id)
        return proxy

    def peek(self, model_id: str) -> Optional[RemoteModel]:
        # No try_fast_path on RemoteModel, so the gateway's no-lock fast
        # lane declines and batches flow through the fused RPC path.
        return self._remote_models.get(model_id)

    def method_for(self, model_id: str) -> Optional[str]:
        return self._router._methods.get(model_id)

    def list_models(self) -> List[str]:
        return self._router.list_models()

    def cache_stats(self) -> Dict[str, object]:
        """Cluster-wide LRU telemetry: per-shard counters summed."""
        totals = {"size": 0, "bytes": 0, "hits": 0, "misses": 0,
                  "evictions": 0}
        for stats in self._router.shard_stats().values():
            cache = stats.get("model_cache") or {}
            for key in totals:
                totals[key] += int(cache.get(key) or 0)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (totals["hits"] / lookups) if lookups else 0.0
        return totals

    def fast_path_stats(self) -> Dict[str, Dict[str, object]]:
        merged: Dict[str, Dict[str, object]] = {}
        for stats in self._router.shard_stats().values():
            merged.update(stats.get("fast_path") or {})
        return merged


class ClusterRouter:
    """Front door of the sharded serving tier.

    Parameters
    ----------
    directory:
        Root of the cluster's durable state; each shard owns
        ``directory/shard-<i>/`` (SQLite store + journal).  Restarting a
        router over an existing directory reattaches to the persisted
        models and journals.
    shards:
        Number of shard worker processes.
    replicas:
        Virtual nodes per shard on the consistent-hash ring.
    max_cached_models:
        Per-shard LRU bound; evicted models rehydrate from SQLite.
    auto_restart:
        Restart a dead shard (over its durable directory) and resend the
        in-flight requests when a call fails mid-flight.  The journal +
        result ledger make the resend exactly-once.
    """

    def __init__(self, directory: Union[str, Path], shards: int = 2,
                 replicas: int = 64,
                 max_cached_models: Optional[int] = None,
                 auto_restart: bool = True, start: bool = True,
                 deadline_ms: Optional[float] = None) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self.directory = Path(directory)
        self.max_cached_models = max_cached_models
        self.auto_restart = auto_restart
        self.default_deadline_ms = deadline_ms
        self.shard_names = [f"shard-{index}" for index in range(shards)]
        self.ring = HashRing(self.shard_names, replicas=replicas)
        self.handles: Dict[str, ShardHandle] = {}
        self._clients: Dict[str, ShardClient] = {}
        #: model id -> registry method name (filled by fit/put_model)
        self._methods: Dict[str, str] = {}
        self._model_counter = 0
        self._request_counter = 0
        #: per-router id nonce: a restarted router must never mint an id a
        #: previous router already burned into a shard's ledger
        self._nonce = uuid.uuid4().hex[:8]
        self._pending: List[Dict] = []
        self._pending_ids: set = set()
        #: request id -> traceback for the most recent gather()
        self.last_errors: Dict[str, str] = {}
        #: ledger hits among the most recent gather()'s results
        self.last_deduped = 0
        #: [{shard, seconds}] for every auto/explicit restart
        self.recoveries: List[Dict[str, object]] = []
        #: version lineages for models served through this router; the
        #: journal lives at the cluster root so a restarted router
        #: replays serving pointers and in-flight candidates
        self.versions = VersionRegistry(
            journal_path=self.directory / "model_versions.jsonl")
        self._store = ClusterModelStore(self)
        if start:
            for name in self.shard_names:
                self._start(name)

    # -- lifecycle ------------------------------------------------------- #
    def _shard_dir(self, name: str) -> Path:
        return self.directory / name

    def _start(self, name: str) -> ShardHandle:
        handle = start_shard(name, str(self._shard_dir(name)),
                             max_cached_models=self.max_cached_models)
        self.handles[name] = handle
        self._clients.pop(name, None)
        return handle

    def _client(self, name: str) -> ShardClient:
        client = self._clients.get(name)
        if client is None:
            handle = self.handles.get(name)
            if handle is None:
                raise ServiceError(f"shard {name!r} is not running")
            client = self._clients[name] = ShardClient(handle.port)
        return client

    def kill_shard(self, name: str) -> None:
        """SIGKILL a shard process (chaos injection; state survives)."""
        handle = self.handles.get(name)
        if handle is None:
            raise ServiceError(f"shard {name!r} is not running")
        handle.kill()
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()

    def restart_shard(self, name: str) -> float:
        """Restart a shard over its durable directory; returns seconds.

        The elapsed time covers process start, SQLite open, journal
        ingest and replay of unanswered requests — the cluster bench's
        recovery-time metric.
        """
        started = time.perf_counter()
        old = self.handles.get(name)
        if old is not None and old.alive:
            old.kill()
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()
        self._start(name)
        elapsed = time.perf_counter() - started
        self.recoveries.append({"shard": name, "seconds": elapsed})
        return elapsed

    def close(self) -> None:
        """Shut every shard down (politely, then firmly)."""
        for name, handle in list(self.handles.items()):
            try:
                self._call(name, {"op": "shutdown"}, retries=0)
            except (ServiceError, ConnectionError, OSError):
                pass
            client = self._clients.pop(name, None)
            if client is not None:
                client.close()
            handle.process.join(timeout=5.0)
            if handle.alive:
                handle.kill()
        self.handles.clear()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transport ------------------------------------------------------- #
    def _call(self, name: str, payload: Dict, retries: int = 1) -> Dict:
        """One RPC to a shard, with restart-and-resend on a dead socket.

        The resend is what makes auto-restart safe to combine with
        at-least-once delivery: the shard's result ledger dedupes, so the
        caller observes exactly-once.
        """
        try:
            reply = self._client(name).call(payload)
        except (ConnectionError, OSError):
            client = self._clients.pop(name, None)
            if client is not None:
                client.close()
            if retries <= 0 or not self.auto_restart:
                raise
            self.restart_shard(name)
            return self._call(name, payload, retries=retries - 1)
        if not reply.get("ok"):
            raise ServiceError(
                f"shard {name!r} rejected {payload.get('op')!r}:\n"
                f"{reply.get('error')}")
        return reply

    # -- fitting / model placement --------------------------------------- #
    def fit(self, data: Union[TensorLike, FitRequest],
            method: Optional[str] = None, model_id: Optional[str] = None,
            **method_kwargs) -> str:
        """Fit on the shard the ring assigns; returns the model id."""
        if isinstance(data, FitRequest):
            request = data
            if method is not None or model_id is not None or method_kwargs:
                raise ValidationError(
                    "pass either a FitRequest or (data, method=..., "
                    "model_id=..., **kwargs), not both")
        else:
            request = FitRequest(data=as_tensor(data),
                                 method=method or "deepmvi",
                                 method_kwargs=dict(method_kwargs),
                                 model_id=model_id)
        request.validate()
        if request.model_id is None:
            # Ids are assigned router-side so the ring owner is known
            # before any shard is contacted.
            self._model_counter += 1
            request = FitRequest(data=request.data, method=request.method,
                                 method_kwargs=request.method_kwargs,
                                 model_id=f"{request.method}-"
                                          f"c{self._model_counter:04d}")
        owner = self.ring.assign(request.model_id)
        reply = self._call(owner, {"op": "fit",
                                   "request": request.to_dict()})
        self._methods[reply["model_id"]] = reply.get("method") \
            or request.method
        self._store._known.add(reply["model_id"])
        return reply["model_id"]

    def put_model(self, model_id: str, imputer,
                  method: Optional[str] = None) -> str:
        """Ship an already-fitted imputer to its owning shard."""
        import base64

        from repro.engine.artifacts import dump_imputer_bytes

        owner = self.ring.assign(model_id)
        blob = base64.b64encode(dump_imputer_bytes(imputer)).decode("ascii")
        self._call(owner, {"op": "put_model", "model_id": model_id,
                           "method": method, "blob": blob})
        if method is not None:
            self._methods[model_id] = method
        self._store._known.add(model_id)
        return model_id

    # -- serving --------------------------------------------------------- #
    @property
    def store(self) -> ClusterModelStore:
        return self._store

    def resolve_ref(self, ref) -> str:
        """Concrete model id a :class:`ModelRef` (or string) serves as."""
        return self.versions.resolve(ModelRef.parse(ref))

    def _resolve_request(self, request: ImputeRequest) -> ImputeRequest:
        """Pin a request to its concrete model id before it hits the wire.

        Refs are router-side state: shards only ever see concrete,
        pattern-legal model ids (``@`` never crosses the socket), and the
        ring placement keys on the resolved id.
        """
        concrete = self.versions.resolve(request.model_ref)
        if request.model_id != concrete:
            request = dataclasses.replace(request, model_id=concrete)
        return request

    def submit(self, request=None, model_id=None,
               deadline_ms: Optional[float] = None) -> str:
        """Queue one request for the next :meth:`gather`; returns its id."""
        request = self._resolve_request(
            coerce_impute_request(request, model_id))
        if request.model_id not in self._store:
            raise ServiceError(
                f"unknown model id {request.model_id!r}; fit() a model "
                "through this router first")
        if request.request_id is None:
            self._request_counter += 1
            request_id = f"req-{self._nonce}-{self._request_counter:06d}"
        else:
            request_id = str(request.request_id)
        if request_id in self._pending_ids:
            raise ValidationError(
                f"request id {request_id!r} is already queued")
        now = time.perf_counter()
        deadline_ms = (self.default_deadline_ms
                       if deadline_ms is None else deadline_ms)
        # Tracing front door for direct router use (the gateway path stamps
        # upstream): mint a sampled root and ship a child on the wire so
        # shard spans parent under it.
        ctx = request.trace
        if ctx is None and obs_trace.enabled():
            ctx = obs_trace.start_trace()
            if ctx is not None:
                request = dataclasses.replace(request, trace=ctx)
                obs_trace.write_span("cluster.submit", ctx, now,
                                     time.perf_counter(),
                                     {"request_id": request_id})
        wire = request.to_dict()
        wire["request_id"] = request_id
        self._pending.append({
            "request": wire,
            "enqueued_at": now,
            "deadline_at": (None if deadline_ms is None
                            else now + deadline_ms / 1000.0),
        })
        self._pending_ids.add(request_id)
        return request_id

    def gather(self, raise_on_error: bool = True) -> List[ImputeResult]:
        """Serve every queued request; results come back in submit order.

        Each shard receives one ``serve`` RPC carrying all of its queued
        requests (the shard micro-batches them per model).  A shard dying
        mid-call is restarted and the same entries are resent — the
        exactly-once ledger turns the resend into idempotent delivery.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        self._pending_ids = set()
        by_owner: Dict[str, List[Dict]] = {}
        for entry in pending:
            owner = self.ring.assign(entry["request"]["model_id"])
            by_owner.setdefault(owner, []).append(entry)
        results: Dict[str, ImputeResult] = {}
        self.last_errors = {}
        self.last_deduped = 0
        for owner, entries in by_owner.items():
            call_start = time.perf_counter()
            try:
                reply = self._call(owner, {"op": "serve",
                                           "entries": entries})
            except (ServiceError, ConnectionError, OSError) as error:
                for entry in entries:
                    self.last_errors[entry["request"]["request_id"]] = \
                        str(error)
                continue
            if obs_trace.enabled():
                call_end = time.perf_counter()
                for entry in entries:
                    ctx = obs_trace.TraceContext.from_wire(
                        entry["request"].get("trace"))
                    if ctx is not None:
                        obs_trace.write_span(
                            "cluster.rpc", ctx.child(), call_start,
                            call_end, {"shard": owner,
                                       "batch_size": len(entries)})
            self.last_deduped += int(reply.get("deduped", 0))
            for request_id, wire in reply["results"].items():
                results[request_id] = ImputeResult.from_dict(wire)
            for failure in reply["failures"]:
                self.last_errors[failure["request_id"]] = failure["error"]
        ordered = [results[entry["request"]["request_id"]]
                   for entry in pending
                   if entry["request"]["request_id"] in results]
        if self.last_errors and raise_on_error:
            error = ServiceError(
                f"{len(self.last_errors)} of {len(pending)} request(s) "
                f"failed ({', '.join(sorted(self.last_errors))}); "
                f"first error:\n{next(iter(self.last_errors.values()))}")
            error.partial_results = ordered
            raise error
        return ordered

    def impute(self, request=None, model_id=None,
               deadline_ms: Optional[float] = None) -> ImputeResult:
        """Serve one request immediately (no queueing)."""
        request = self._resolve_request(
            coerce_impute_request(request, model_id))
        results = self._serve_remote(
            request.model_id,
            [request.data],
            request_ids=[str(request.request_id)]
            if request.request_id is not None else None,
            deadline_ms=deadline_ms)
        return results[0]

    def _serve_remote(self, model_id: str, tensors: List,
                      request_ids: Optional[List[str]] = None,
                      deadline_ms: Optional[float] = None,
                      traces: Optional[List] = None,
                      ) -> List[ImputeResult]:
        """Serve ``tensors`` against one model in a single shard RPC.

        ``traces`` (parallel to ``tensors``) carries the callers'
        :class:`~repro.obs.TraceContext`\\ s across the hop: each traced
        request gets an RPC child context written as its ``cluster.rpc``
        span here and shipped in the wire payload so the shard's spans
        parent under it.
        """
        now = time.perf_counter()
        deadline_ms = (self.default_deadline_ms
                       if deadline_ms is None else deadline_ms)
        entries = []
        rpc_ctxs = []
        for index, tensor in enumerate(tensors):
            if request_ids is not None:
                request_id = request_ids[index]
            else:
                self._request_counter += 1
                request_id = f"req-{self._nonce}-{self._request_counter:06d}"
            ctx = traces[index] if traces is not None else None
            rpc_ctx = ctx.child() if ctx is not None \
                and obs_trace.enabled() else None
            encode_start = time.perf_counter()
            wire = ImputeRequest(
                model_id=model_id,
                data=as_tensor(tensor) if tensor is not None else None,
                request_id=request_id,
                trace=rpc_ctx).to_dict()
            if rpc_ctx is not None:
                obs_trace.write_span("wire.encode", rpc_ctx.child(),
                                     encode_start, time.perf_counter())
                rpc_ctxs.append(rpc_ctx)
            entries.append({
                "request": wire,
                "enqueued_at": now,
                "deadline_at": (None if deadline_ms is None
                                else now + deadline_ms / 1000.0),
            })
        owner = self.ring.assign(model_id)
        reply = self._call(owner, {"op": "serve", "entries": entries})
        call_end = time.perf_counter()
        for rpc_ctx in rpc_ctxs:
            # Spans from encode through reply: the shard-side spans (which
            # the wire context parents) land inside this window.
            obs_trace.write_span("cluster.rpc", rpc_ctx, now, call_end,
                                 {"shard": owner,
                                  "batch_size": len(entries)})
        self.last_deduped = int(reply.get("deduped", 0))
        if reply["failures"]:
            first = reply["failures"][0]
            raise ServiceError(
                f"{len(reply['failures'])} request(s) failed on shard "
                f"{owner!r}; first ({first['request_id']!r}):\n"
                f"{first['error']}")
        return [ImputeResult.from_dict(
                    reply["results"][entry["request"]["request_id"]])
                for entry in entries]

    # -- introspection ---------------------------------------------------- #
    def pending_count(self) -> int:
        return len(self._pending)

    def list_models(self) -> List[str]:
        models: set = set()
        for name in self.shard_names:
            try:
                reply = self._call(name, {"op": "list_models"}, retries=0)
            except (ServiceError, ConnectionError, OSError):
                continue
            models.update(reply.get("models", ()))
        return sorted(models)

    def shard_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-shard rollups (dead shards report ``alive: False``)."""
        stats: Dict[str, Dict[str, object]] = {}
        for name in self.shard_names:
            try:
                reply = self._call(name, {"op": "stats"}, retries=0)
            except (ServiceError, ConnectionError, OSError) as error:
                stats[name] = {"alive": False, "error": str(error)}
                continue
            reply.pop("ok", None)
            stats[name] = reply
        return stats

    def stats(self) -> Dict[str, object]:
        return {
            "ring": self.ring.describe(),
            "shards": self.shard_stats(),
            "recoveries": list(self.recoveries),
            "pending_requests": len(self._pending),
            "models": self.list_models(),
        }

    def describe(self) -> Dict[str, object]:
        return {
            **self.stats(),
            "directory": str(self.directory),
            "shards": list(self.shard_names),
            "shard_stats": self.shard_stats(),
            "default_deadline_ms": self.default_deadline_ms,
            "auto_restart": self.auto_restart,
        }

    def analytics(self, bucket_seconds: float = 1.0) -> MetricsSnapshot:
        """SQL window-function analytics over every shard's journal.

        Reads the shards' SQLite files directly (they may be mid-restart
        or even dead — the durable log still answers), unioning the
        journals with ``ATTACH`` so one query set covers the cluster:
        p99-over-time, per-model QPS, fusion-rate trend.

        Returns the shared :class:`~repro.api.telemetry.MetricsSnapshot`
        surface: the journal-wide rollup (completions, QPS over the
        journal's wall-clock span, p50/p95/p99, fusion and fast-path
        rates) fills the typed fields, while the historical analytics
        keys (``p99_over_time``, ``per_model_qps``, ``fusion_trend``,
        ``bucket_seconds``, ``shards``, ``overall``) remain addressable
        through the snapshot's Mapping interface.
        """
        paths = [(name, str(self._shard_dir(name) / DB_FILENAME))
                 for name in self.shard_names
                 if (self._shard_dir(name) / DB_FILENAME).exists()]
        report = cluster_analytics(paths, bucket_seconds=bucket_seconds)
        overall = report["overall"]
        return MetricsSnapshot(
            source="cluster",
            uptime_seconds=overall["duration_seconds"],
            submitted=overall["completions"],
            completed=overall["completions"],
            qps=overall["qps"],
            latency_p50_seconds=overall["latency_p50_seconds"],
            latency_p95_seconds=overall["latency_p95_seconds"],
            latency_p99_seconds=overall["latency_p99_seconds"],
            fusion_rate=overall["fusion_rate"],
            fast_path_hit_rate=overall["fast_path_hit_rate"],
            extras={key: report[key]
                    for key in ("bucket_seconds", "overall", "p99_over_time",
                                "per_model_qps", "fusion_trend", "shards")
                    if key in report},
        )
