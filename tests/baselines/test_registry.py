"""Tests of the capability-aware plugin registry."""

import pytest

from repro.baselines.registry import (
    DEEPMVI_VARIANTS,
    ImputerRegistry,
    MethodInfo,
    create_imputer,
    get_registry,
    list_methods,
    method_info,
    register_imputer,
    register_method,
)
from repro.baselines.simple import MeanImputer
from repro.exceptions import ConfigError


class TestRegisterImputerDecorator:
    def test_round_trip(self):
        registry = ImputerRegistry()

        @registry.register_imputer("noop", kind="conventional",
                                   tags=("test",), summary="does nothing")
        class NoopImputer(MeanImputer):
            name = "Noop"

        info = registry.info("noop")
        assert info.factory is NoopImputer
        assert info.kind == "conventional"
        assert info.tags == ("test",)
        assert info.display_name == "noop"
        assert isinstance(registry.create("noop"), NoopImputer)

    def test_decorator_returns_factory_unchanged(self):
        registry = ImputerRegistry()

        @registry.register_imputer("noop2")
        class NoopImputer(MeanImputer):
            pass

        assert NoopImputer.__name__ == "NoopImputer"
        assert isinstance(NoopImputer(), MeanImputer)

    def test_module_level_decorator_targets_default_registry(self):
        name = "test-registry-probe"

        @register_imputer(name, kind="conventional", tags=("test",),
                          overwrite=True)
        class ProbeImputer(MeanImputer):
            pass

        assert name in get_registry()
        assert isinstance(get_registry().create(name), ProbeImputer)

    def test_duplicate_name_rejected(self):
        registry = ImputerRegistry()
        registry.register(MethodInfo("dup", MeanImputer))
        with pytest.raises(ConfigError, match="already registered"):
            registry.register(MethodInfo("dup", MeanImputer))

    def test_duplicate_allowed_with_overwrite(self):
        registry = ImputerRegistry()
        registry.register(MethodInfo("dup", MeanImputer))
        registry.register(MethodInfo("dup", MeanImputer, kind="deep"),
                          overwrite=True)
        assert registry.info("dup").kind == "deep"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            MethodInfo("bad", MeanImputer, kind="quantum")


class TestCapabilityQueries:
    def test_kind_filter_partitions_registry(self):
        deep = set(list_methods(kind="deep"))
        conventional = set(list_methods(kind="conventional"))
        assert not deep & conventional
        assert deep | conventional == set(list_methods())
        assert "deepmvi" in deep
        assert "cdrec" in conventional

    def test_tag_filter(self):
        ablations = list_methods(tags=("ablation",))
        assert set(ablations) == set(DEEPMVI_VARIANTS) - {"deepmvi"}

    def test_bare_string_tag_treated_as_single_tag(self):
        # A plain string must not be iterated character-wise (which would
        # silently match nothing).
        assert list_methods(tags="ablation") == list_methods(tags=("ablation",))
        assert list_methods(tags="paper")

    def test_bare_string_tag_accepted_at_registration(self):
        info = MethodInfo("string-tag-probe", MeanImputer, tags="custom")
        assert info.tags == ("custom",)

    def test_multidim_filter(self):
        multidim = list_methods(supports_multidim=True)
        assert "deepmvi" in multidim
        assert "deepmvi1d" not in multidim
        assert "mean" not in multidim

    def test_infos_carry_display_names_and_variants(self):
        info = method_info("deepmvi-no-tt")
        assert info.display_name == "DeepMVI-NoTT"
        assert info.variant_of == "deepmvi"
        assert method_info("deepmvi").variant_of is None

    BUILTINS = ["mean", "interpolation", "locf", "svdimp", "softimpute",
                "svt", "cdrec", "trmf", "stmvl", "dynammo", "tkcm", "brits",
                "mrnn", "gpvae", "transformer"] + sorted(DEEPMVI_VARIANTS)

    def test_every_builtin_has_a_summary(self):
        # Other tests may register probe methods without summaries, so only
        # the built-in entries are held to the documentation bar.
        for name in self.BUILTINS:
            assert method_info(name).summary, f"{name} has no summary"


class TestFuzzyErrors:
    def test_close_misspelling_gets_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean.*deepmvi"):
            get_registry().create("deepmv")

    def test_far_off_name_lists_available(self):
        with pytest.raises(ConfigError, match="available"):
            get_registry().create("zzzzzzzz")


class TestDeprecationShims:
    def test_create_imputer_warns_but_resolves(self):
        with pytest.warns(DeprecationWarning, match="create_imputer"):
            imputer = create_imputer("mean")
        assert isinstance(imputer, MeanImputer)

    def test_register_method_warns_but_resolves(self):
        class Custom(MeanImputer):
            name = "Custom"

        with pytest.warns(DeprecationWarning, match="register_imputer"):
            register_method("test-custom-shim", Custom)
        assert isinstance(get_registry().create("test-custom-shim"), Custom)

    def test_register_method_overwrites_like_before(self):
        # The legacy function silently replaced entries; the shim keeps that.
        class A(MeanImputer):
            pass

        class B(MeanImputer):
            pass

        with pytest.warns(DeprecationWarning):
            register_method("test-overwrite-shim", A)
            register_method("test-overwrite-shim", B)
        assert isinstance(get_registry().create("test-overwrite-shim"), B)


class TestDeepMVIVariants:
    @pytest.mark.parametrize("variant", sorted(DEEPMVI_VARIANTS))
    def test_variant_resolves_with_ablation_flags(self, variant):
        imputer = get_registry().create(variant)
        for flag, value in DEEPMVI_VARIANTS[variant].items():
            assert getattr(imputer.config, flag) == value

    def test_variant_display_name_used_in_reports(self):
        assert get_registry().create("deepmvi1d").name == "DeepMVI1D"
