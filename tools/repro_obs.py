#!/usr/bin/env python
"""Standalone entry point for repro-obs (no PYTHONPATH needed).

Equivalent to ``PYTHONPATH=src python -m repro.obs``; keeps working
from any checkout because it resolves ``src/`` relative to this file.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
