"""Gateway serving throughput: concurrent producers vs one-at-a-time.

The serving gateway's claim is that under concurrent traffic it beats the
naive pattern (every caller invokes ``service.impute()`` itself, one
request at a time) by fusing same-model window-shaped requests into shared
forward calls.  This benchmark measures exactly that claim with
``N_PRODUCERS`` concurrent producer threads and three serving modes:

* **sequential** — one thread serves every request back-to-back through
  ``service.impute()`` (the zero-concurrency floor);
* **one-at-a-time concurrent** — the producers each call
  ``service.impute()`` directly, serialised by a lock
  (:class:`~repro.api.ImputationService` is not thread-safe); this is the
  pattern the gateway replaces;
* **gateway** — the same producers submit to
  :class:`repro.gateway.Gateway`, whose adaptive micro-batcher fuses the
  requests (acceptance bar: **>= 2x** requests/sec against both
  baselines).

Producers synchronise on a barrier so the timed window contains only
serving work, and every mode takes the best of ``REPEATS`` passes — a
single pass on a shared CI host can lose a scheduling quantum to a
neighbour, and the gate metric is a ratio of sustained rates.  Every
gateway pass also asserts delivery integrity (each request exactly one
result, in submit order per producer) — throughput earned by dropping
requests would be meaningless.

Results land in ``benchmarks/results/gateway_throughput.{txt,json}``.  In
full mode the payload is also written to the repo-root
``BENCH_gateway_throughput.json`` trajectory artifact.  The CI
bench-regression job re-runs this file in fast mode and gates
``gateway.concurrent_speedup`` against
``benchmarks/baselines/gateway_fast.json`` via
``benchmarks/check_regression.py`` (25% tolerance).
"""

import json
import pathlib
import threading
import time

from repro.api import ImputationService
from repro.api.requests import ImputeRequest
from repro.core.config import DeepMVIConfig
from repro.data.missing import MissingScenario, apply_scenario
from repro.gateway import Gateway, GatewayConfig

from benchmarks._harness import bench_dataset, emit, is_fast

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_PRODUCERS = 8

if is_fast():
    SERVING_WINDOW = 25
    REQUESTS_PER_PRODUCER = 8
    REPEATS = 3
    SERVING_CONFIG = dict(max_epochs=2, samples_per_epoch=32, patience=1,
                          batch_size=8, n_filters=4, max_context_windows=8)
else:
    SERVING_WINDOW = 16
    REQUESTS_PER_PRODUCER = 16
    REPEATS = 4
    SERVING_CONFIG = dict(max_epochs=3, samples_per_epoch=128, patience=2,
                          batch_size=16, n_filters=8, max_context_windows=16)

MAX_BATCH_SIZE = 64
MAX_WAIT_MS = 10.0
SCENARIO = MissingScenario("mcar", {"incomplete_fraction": 0.5,
                                    "block_size": 4})


def _traffic(incomplete, n_time):
    """Per-producer lists of window-shaped request tensors."""
    traffic = []
    for producer in range(N_PRODUCERS):
        windows = []
        for index in range(REQUESTS_PER_PRODUCER):
            offset = producer * REQUESTS_PER_PRODUCER + index
            start = (offset * 7) % (n_time - SERVING_WINDOW)
            windows.append(incomplete.slice_time(
                start, start + SERVING_WINDOW))
        traffic.append(windows)
    return traffic


def _timed_producers(producer_fn):
    """Run one producer thread per traffic lane; time from barrier release.

    Thread creation happens outside the timed window: the measurement is
    serving throughput, not ``Thread.start`` overhead.
    """
    barrier = threading.Barrier(N_PRODUCERS + 1)
    threads = [threading.Thread(target=producer_fn, args=(index, barrier),
                                name=f"bench-producer-{index}")
               for index in range(N_PRODUCERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def _run_gateway_pass(service, model_id, traffic):
    """One concurrent pass; returns (elapsed, stats, delivered results)."""
    gateway = Gateway(service, GatewayConfig(
        max_batch_size=MAX_BATCH_SIZE, max_wait_ms=MAX_WAIT_MS,
        workers=1, max_queue_depth=4096, admission="block"))
    delivered = {}

    def producer_loop(producer_index, barrier):
        barrier.wait()
        futures = []
        for index, tensor in enumerate(traffic[producer_index]):
            request_id = f"p{producer_index}-r{index:03d}"
            futures.append(gateway.submit(ImputeRequest(
                model_id=model_id, data=tensor, request_id=request_id)))
        delivered[producer_index] = [future.result(timeout=120.0)
                                     for future in futures]

    elapsed = _timed_producers(producer_loop)
    stats = gateway.stats()
    gateway.close()
    return elapsed, stats, delivered


def test_gateway_throughput(results_dir):
    truth = bench_dataset("airq", seed=0)
    incomplete, _ = apply_scenario(truth, SCENARIO, seed=0)
    config = DeepMVIConfig(**SERVING_CONFIG)
    service = ImputationService()
    model_id = service.fit(incomplete, method="deepmvi", config=config)
    traffic = _traffic(incomplete, truth.n_time)
    total = N_PRODUCERS * REQUESTS_PER_PRODUCER

    # Warm the serving path (first impute builds lazy tables and the
    # per-shape context-structure template).
    for tensor in traffic[0]:
        service.impute(tensor, model_id=model_id)

    # -- sequential: one thread, back-to-back --------------------------- #
    sequential_rps = 0.0
    for _ in range(max(2, REPEATS - 1)):
        start = time.perf_counter()
        for windows in traffic:
            for tensor in windows:
                service.impute(tensor, model_id=model_id)
        sequential_rps = max(sequential_rps,
                             total / (time.perf_counter() - start))

    # -- one-at-a-time under concurrent producers ----------------------- #
    # The pattern the gateway replaces: every producer calls
    # service.impute() itself.  The service is not thread-safe, so the
    # calls serialise on a lock — which is precisely what "one-at-a-time"
    # serving is.
    impute_lock = threading.Lock()

    def naive_producer(producer_index, barrier):
        barrier.wait()
        for tensor in traffic[producer_index]:
            with impute_lock:
                service.impute(tensor, model_id=model_id)

    naive_rps = 0.0
    for _ in range(REPEATS):
        naive_rps = max(naive_rps,
                        total / _timed_producers(naive_producer))

    # -- gateway: same producers, micro-batched fused serving ----------- #
    gateway_rps = 0.0
    best_stats = None
    for _ in range(REPEATS):
        elapsed, stats, delivered = _run_gateway_pass(service, model_id,
                                                      traffic)
        # Delivery integrity on EVERY pass: exactly one result per request,
        # in submit order per producer (the gateway preserves caller ids).
        assert sorted(delivered) == list(range(N_PRODUCERS))
        for producer_index, results in delivered.items():
            expected = [f"p{producer_index}-r{index:03d}"
                        for index in range(REQUESTS_PER_PRODUCER)]
            assert [r.request_id for r in results] == expected, (
                f"producer {producer_index} results out of order or lost")
        assert stats["completed"] == total and stats["failed"] == 0
        rps = total / elapsed
        if rps > gateway_rps:
            gateway_rps, best_stats = rps, stats

    speedup = gateway_rps / max(naive_rps, 1e-9)
    speedup_vs_sequential = gateway_rps / max(sequential_rps, 1e-9)
    metrics = {
        "gateway.sequential_requests_per_sec": sequential_rps,
        "gateway.naive_concurrent_requests_per_sec": naive_rps,
        "gateway.concurrent_requests_per_sec": gateway_rps,
        "gateway.concurrent_speedup": speedup,
        "gateway.sequential_speedup": speedup_vs_sequential,
        "gateway.fusion_rate": best_stats["fusion_rate"],
        "gateway.mean_batch_size": best_stats["mean_batch_size"],
        "gateway.latency_p50_seconds": best_stats["latency_p50_seconds"],
        "gateway.latency_p95_seconds": best_stats["latency_p95_seconds"],
        "gateway.latency_p99_seconds": best_stats["latency_p99_seconds"],
    }
    lines = [
        f"serving  sequential {sequential_rps:>8.1f} req/sec   "
        f"one-at-a-time({N_PRODUCERS} producers) {naive_rps:>8.1f} req/sec",
        f"gateway  {gateway_rps:>8.1f} req/sec   "
        f"{speedup:.2f}x vs one-at-a-time   "
        f"{speedup_vs_sequential:.2f}x vs sequential",
        f"gateway  fusion {best_stats['fusion_rate']:.0%}   "
        f"mean batch {best_stats['mean_batch_size']:.1f}   "
        f"p50 {best_stats['latency_p50_seconds'] * 1e3:.1f} ms   "
        f"p95 {best_stats['latency_p95_seconds'] * 1e3:.1f} ms   "
        f"p99 {best_stats['latency_p99_seconds'] * 1e3:.1f} ms",
    ]

    payload = {
        "benchmark": "gateway_throughput",
        "fast_mode": is_fast(),
        "workload": {
            "dataset": "airq",
            "window": SERVING_WINDOW,
            "producers": N_PRODUCERS,
            "requests_per_producer": REQUESTS_PER_PRODUCER,
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_ms": MAX_WAIT_MS,
            "scenario": SCENARIO.describe(),
        },
        "metrics": {key: round(float(value), 4)
                    for key, value in sorted(metrics.items())},
        # Dimensionless ratio gated by benchmarks/check_regression.py:
        # stable across host speeds, unlike absolute requests/sec.
        "gate": ["gateway.concurrent_speedup"],
    }
    emit(results_dir, "gateway_throughput",
         "Gateway serving throughput: concurrent producers vs sequential",
         "\n".join(lines))
    (results_dir / "gateway_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    if not is_fast():
        # The committed trajectory artifact is only refreshed by full runs.
        (REPO_ROOT / "BENCH_gateway_throughput.json").write_text(
            json.dumps(payload, indent=2) + "\n")

    # Acceptance bar: the gateway must at least double one-at-a-time
    # throughput under concurrent window-shaped traffic — against both the
    # concurrent naive pattern it replaces and the zero-concurrency
    # sequential floor.
    assert speedup >= 2.0, (
        f"gateway throughput only {speedup:.2f}x the one-at-a-time "
        f"concurrent baseline (bar: 2.0x)")
    assert speedup_vs_sequential >= 2.0, (
        f"gateway throughput only {speedup_vs_sequential:.2f}x the "
        f"sequential baseline (bar: 2.0x)")
    # Micro-batching must actually engage — a gateway that degenerates to
    # per-request serving can still pass a noisy speedup check.
    assert best_stats["fusion_rate"] >= 0.9, (
        f"fusion rate {best_stats['fusion_rate']:.0%} — the adaptive "
        "batcher is not grouping requests")
