"""Training loop for DeepMVI: likelihood maximisation with early stopping."""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.config import DeepMVIConfig
from repro.core.context import Batch, DatasetContext
from repro.core.model import DeepMVIModel
from repro.core.sampling import MissingShapeSampler, TrainingSampler
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad

logger = logging.getLogger(__name__)


@dataclass
class TrainingHistory:
    """Per-epoch record of a DeepMVI training run."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    stopped_early: bool = False
    wall_time_seconds: float = 0.0

    @property
    def n_epochs(self) -> int:
        return len(self.train_losses)


class DeepMVITrainer:
    """Runs the self-supervised training procedure of Figure 3 of the paper.

    The trainer samples training instances with synthetic missing blocks,
    minimises squared error at the hidden cells with Adam, and performs early
    stopping on a fixed validation batch of held-out instances.
    """

    def __init__(self, model: DeepMVIModel, context: DatasetContext,
                 config: DeepMVIConfig, missing_mask: np.ndarray):
        self.model = model
        self.context = context
        self.config = config
        rng = np.random.default_rng(config.seed)
        shape_sampler = MissingShapeSampler(
            missing_mask=missing_mask,
            index_table=context.index_table,
            dimension_sizes=context.dimension_sizes,
        )
        self.sampler = TrainingSampler(context, shape_sampler, rng)
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate)

    # ------------------------------------------------------------------ #
    def _validation_batch(self) -> Batch:
        n_validation = max(
            8, int(self.config.samples_per_epoch * self.config.validation_fraction))
        return self.sampler.sample_batch(n_validation)

    def _evaluate(self, batch: Batch) -> float:
        with no_grad():
            prediction = self.model(batch)
            loss = mse_loss(prediction, Tensor(batch.targets))
        return float(loss.item())

    def fit(self) -> TrainingHistory:
        """Train until early stopping or ``max_epochs``; returns the history.

        The model is left holding the parameters of the best validation
        epoch.
        """
        config = self.config
        history = TrainingHistory()
        validation_batch = self._validation_batch()
        best_state = self.model.state_dict()
        epochs_without_improvement = 0
        start_time = time.perf_counter()

        n_batches = max(1, config.samples_per_epoch // config.batch_size)
        for epoch in range(config.max_epochs):
            self.model.train()
            epoch_losses = []
            for _ in range(n_batches):
                batch = self.sampler.sample_batch(config.batch_size)
                prediction = self.model(batch)
                loss = mse_loss(prediction, Tensor(batch.targets))
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.clip_grad_norm(config.grad_clip)
                self.optimizer.step()
                epoch_losses.append(float(loss.item()))

            self.model.eval()
            train_loss = float(np.mean(epoch_losses))
            validation_loss = self._evaluate(validation_batch)
            history.train_losses.append(train_loss)
            history.validation_losses.append(validation_loss)
            if config.verbose:
                logger.info("[deepmvi] epoch %3d train=%.4f val=%.4f",
                            epoch, train_loss, validation_loss)

            if validation_loss < history.best_validation_loss - 1e-6:
                history.best_validation_loss = validation_loss
                history.best_epoch = epoch
                best_state = self.model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if (epochs_without_improvement >= config.patience
                        and epoch + 1 >= config.min_epochs):
                    history.stopped_early = True
                    break

        self.model.load_state_dict(best_state)
        history.wall_time_seconds = time.perf_counter() - start_time
        return history
