"""Evaluation harness: metrics, the experiment runner, downstream analytics,
and the per-figure experiment configurations."""

from repro.evaluation.metrics import mae, rmse, nrmse, masked_errors
from repro.evaluation.runner import ExperimentRunner, ExperimentResult
from repro.evaluation.analytics import (
    aggregate_analytics_error,
    drop_cell_aggregate,
    downstream_comparison,
)
from repro.evaluation.reporting import format_table, results_to_rows, pivot

__all__ = [
    "mae",
    "rmse",
    "nrmse",
    "masked_errors",
    "ExperimentRunner",
    "ExperimentResult",
    "aggregate_analytics_error",
    "drop_cell_aggregate",
    "downstream_comparison",
    "format_table",
    "results_to_rows",
    "pivot",
]
