"""Trivial imputation baselines: mean, last-observation-carried-forward,
linear interpolation.

These are not evaluated in the paper's main tables but serve as sanity
anchors in the test-suite and as initialisers for the matrix-completion
methods.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    MatrixImputer,
    fill_with_interpolation,
    fill_with_row_means,
)


class MeanImputer(MatrixImputer):
    """Replace each missing cell with its series' observed mean."""

    name = "Mean"
    initial_fill = "zero"

    def _impute_matrix(self, matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return fill_with_row_means(matrix, mask)


class LinearInterpolationImputer(MatrixImputer):
    """Linear interpolation along time within each series."""

    name = "LinearInterp"
    initial_fill = "zero"

    def _impute_matrix(self, matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return fill_with_interpolation(matrix, mask)


class LOCFImputer(MatrixImputer):
    """Last observation carried forward (falls back to backward fill / zero)."""

    name = "LOCF"
    initial_fill = "zero"

    def _impute_matrix(self, matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
        filled = matrix.copy()
        n_rows, length = matrix.shape
        for row in range(n_rows):
            last = None
            for t in range(length):
                if mask[row, t] == 1:
                    last = matrix[row, t]
                elif last is not None:
                    filled[row, t] = last
            # Backward fill for a missing prefix.
            nxt = None
            for t in reversed(range(length)):
                if mask[row, t] == 1:
                    nxt = matrix[row, t]
                elif nxt is not None and mask[row, t] == 0 and filled[row, t] == matrix[row, t]:
                    filled[row, t] = nxt
            if mask[row].sum() == 0:
                filled[row] = 0.0
        return np.nan_to_num(filled, nan=0.0)
