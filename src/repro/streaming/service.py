"""Streaming serving: many concurrent streams over one imputation service.

:class:`StreamingService` is the serving layer for live traffic.  Each
registered stream owns a model in the wrapped
:class:`~repro.api.ImputationService` (fitted on that stream's bounded
history, refreshed every ``refit_every`` windows); each serving *step*
takes the next pending window of every stream and pushes them through the
service's micro-batched ``submit``/``gather`` path, so

* windows of distinct streams run concurrently (one serving batch per
  model, fanned over the engine's process pool with ``workers > 1``), and
* a failure is isolated to its stream and window — a poisoned window
  produces one failed :class:`StreamWindowResult` while every other
  stream's window in the same step completes normally.

Methods with a serving fast path (:mod:`repro.core.fast_path`) compose
with the refit cadence: fit DeepMVI with
``DeepMVIConfig(fast_path="background")`` and every refit-every-K model
spawns its table build off-thread — windows keep serving through the full
forward (stale-but-correct) until the tables land, at which point repeat
traffic drops to table lookups.  :meth:`StreamingService.wait_for_fast_path`
waits that gap out when determinism matters more than latency.

The typical loop::

    svc = StreamingService(workers=4, store_dir="models/")
    svc.open_stream("plant-a", method="svdimp", refit_every=8)
    svc.open_stream("plant-b", method="interpolation")
    for window_a, window_b in zip(stream_a, stream_b):
        svc.push("plant-a", window_a)
        svc.push("plant-b", window_b)
        for result in svc.step():
            ...                       # result.completed, result.latency_seconds

or, for finite replays, simply ``svc.run({"plant-a": stream_a, ...})``.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Mapping, Optional, \
    Union

from repro.analysis.lockcheck import checked_lock, guarded_by
from repro.api.refs import ModelRef, warn_bare_model_id
from repro.api.requests import ImputeRequest, check_model_id
from repro.api.service import ImputationService
from repro.api.telemetry import MetricsSnapshot, rate
from repro.baselines.registry import ImputerRegistry, get_registry
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ServiceError, ValidationError
from repro.streaming.imputer import refit_due
from repro.streaming.windows import HistoryBuffer, StreamWindow, WindowedStream

__all__ = ["StreamState", "StreamWindowResult", "StreamingService"]

#: sentinel distinguishing "argument omitted" from an explicit ``None``
#: (``max_history=None`` legitimately means an unbounded history)
_UNSET: object = object()


@dataclass
class StreamWindowResult:
    """Outcome of serving one window of one stream."""

    stream_id: str
    window_index: int
    start: int
    stop: int
    completed: Optional[TimeSeriesTensor] = None
    #: end-to-end serving latency of this window (queue wait inside the
    #: sweep + its share of the compute)
    latency_seconds: float = 0.0
    #: True when this window triggered an incremental refit
    refit: bool = False
    #: wall-clock of that refit (0 when ``refit`` is False)
    refit_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.completed is not None


@dataclass
class StreamState:
    """Book-keeping for one open stream."""

    stream_id: str
    method: str
    method_kwargs: Dict[str, object] = field(default_factory=dict)
    refit_every: int = 8
    history: HistoryBuffer = field(default_factory=HistoryBuffer)
    model_id: Optional[str] = None
    #: True when ``model_id`` was fitted by the streaming service itself
    #: (and may therefore be evicted on refit); False for warm-start models
    #: owned by the caller.
    model_owned: bool = False
    windows_since_fit: int = 0
    windows_served: int = 0
    refits: int = 0
    #: window index -> error traceback for windows that failed
    errors: Dict[int, str] = field(default_factory=dict)
    pending: List[StreamWindow] = field(default_factory=list)
    closed: bool = False

    def describe(self) -> Dict[str, object]:
        return {
            "stream_id": self.stream_id,
            "method": self.method,
            "model_id": self.model_id,
            "windows_served": self.windows_served,
            "refits": self.refits,
            "failures": len(self.errors),
            "history_steps": self.history.steps,
            "closed": self.closed,
        }


@guarded_by("_telemetry_lock", "_completed", "_failed", "_fused_completed",
            "_fast_path_completed", "_latencies")
class StreamingService:
    """Serve per-window impute requests for many concurrent streams.

    Parameters
    ----------
    service:
        The :class:`~repro.api.ImputationService` to serve through; built
        from ``store_dir``/``workers`` when omitted.
    store_dir:
        Model-store directory; required for parallel serving to ship only
        artifact paths to worker processes.
    workers:
        Executor width for each serving step; with ``N > 1`` the streams'
        serving batches fan out over a process pool.
    default_refit_every / default_max_history:
        Stream defaults, overridable per :meth:`open_stream`.
    """

    def __init__(self, service: Optional[ImputationService] = None,
                 store_dir: Optional[str] = None, workers: int = 1,
                 registry: Optional[ImputerRegistry] = None,
                 default_refit_every: int = 8,
                 default_max_history: Optional[int] = 512) -> None:
        self.registry = registry or get_registry()
        self.service = service or ImputationService(
            store_dir=store_dir, workers=workers, registry=self.registry)
        self.default_refit_every = default_refit_every
        self.default_max_history = default_max_history
        self._streams: Dict[str, StreamState] = {}
        # telemetry behind stats(): window outcomes across every stream.
        # Guarded (lockcheck-instrumented, like GatewayMetrics) because a
        # stats() poll may run concurrently with a step() when the service
        # is driven next to a gateway worker pool.
        self._telemetry_lock = checked_lock(
            "StreamingService._telemetry_lock")
        self._started_at = time.perf_counter()
        self._completed = 0
        self._failed = 0
        self._fused_completed = 0
        self._fast_path_completed = 0
        self._latencies: Deque[float] = deque(maxlen=4096)

    # -- stream lifecycle ----------------------------------------------- #
    def open_stream(self, stream_id: str, method: Optional[str] = None,
                    refit_every: Optional[int] = None,
                    max_history: Union[int, None, object] = _UNSET,
                    warm_start=None,
                    **method_kwargs) -> StreamState:
        """Register a stream; returns its (mutable) state record.

        ``warm_start`` names a model already in the wrapped service's
        store — a :class:`~repro.api.refs.ModelRef` or a (deprecated)
        legacy id string: the stream serves from it immediately instead of
        fitting on its first window (combine with ``refit_every=0`` to
        never refit).  A floating ref (``ModelRef.latest``/bare id) keeps
        following the lineage's serving pointer, so a canary promotion
        reroutes the stream's traffic to the new version.
        ``method`` defaults to the warm-start model's recorded method (so
        incremental refits keep training the same model family), or to
        ``"interpolation"`` for cold streams.  ``max_history=None`` keeps
        an unbounded refit history; omit it for the service default.
        A closed stream's id may be reopened — the new stream starts
        fresh, and the closed stream's own model is dropped from the
        store.  Methods not tagged ``streaming`` in the registry are
        allowed but warned about — their refits rerun full training on
        every trigger.
        """
        check_model_id(stream_id, label="stream_id")
        existing = self._streams.get(stream_id)
        if existing is not None:
            if not existing.closed:
                raise ValidationError(
                    f"stream {stream_id!r} is already open")
            self._evict_owned_model(existing)
        warm_concrete = None
        if warm_start is not None:
            warn_bare_model_id(warm_start,
                               where="open_stream(warm_start=...)",
                               stacklevel=3)
            warm_ref = ModelRef.parse(warm_start)
            warm_concrete = self.service.resolve_ref(warm_ref)
            if warm_concrete not in self.service.store:
                raise ServiceError(
                    f"warm-start model {warm_start!r} is not in the service "
                    "store; fit() it first or pass a store_dir that has it")
            # Floating refs keep the stream on the lineage's *base* id so
            # every step re-resolves ``@latest`` (a canary promotion
            # reroutes traffic); pinned refs freeze the concrete version.
            if not warm_ref.pinned:
                warm_concrete = warm_ref.model_id
        if method is None:
            method = (self.service.store.method_for(
                self.service.resolve_ref(warm_concrete))
                if warm_concrete is not None else None) or "interpolation"
        info = self.registry.info(method)
        if "streaming" not in info.tags:
            warnings.warn(
                f"method {info.name!r} is not tagged streaming-capable; "
                "incremental refits will rerun full training "
                "(see list_method_infos(tags=('streaming',)))",
                UserWarning, stacklevel=2)
        refit_every = self.default_refit_every if refit_every is None \
            else refit_every
        if refit_every < 0:
            raise ValidationError(
                f"refit_every must be >= 0, got {refit_every}")
        if max_history is _UNSET:
            max_history = self.default_max_history
        state = StreamState(
            stream_id=stream_id, method=info.name,
            method_kwargs=dict(method_kwargs), refit_every=refit_every,
            history=HistoryBuffer(max_history=max_history),
            model_id=warm_concrete,
        )
        self._streams[stream_id] = state
        return state

    def close_stream(self, stream_id: str) -> StreamState:
        """Mark a stream closed; its pending windows are discarded."""
        state = self._state(stream_id)
        state.closed = True
        state.pending.clear()
        return state

    def streams(self) -> List[str]:
        return sorted(self._streams)

    def describe(self) -> Dict[str, object]:
        """Serving-state snapshot across all streams."""
        return {
            "streams": {sid: state.describe()
                        for sid, state in sorted(self._streams.items())},
            "service": self.service.describe(),
        }

    def stats(self) -> MetricsSnapshot:
        """Window-serving telemetry in the shared snapshot shape.

        The same typed :class:`~repro.api.telemetry.MetricsSnapshot` the
        gateway and the cluster router return, so the canary controller
        (and dashboards) read one surface regardless of tier.  Counters
        cover every stream: QPS is completed windows per second of uptime,
        ``queue_depth`` is windows pushed but not yet stepped, percentiles
        come from the per-window end-to-end latencies.  A cold service
        snapshots as all zeros.
        """
        from repro.gateway.metrics import percentile

        uptime = max(time.perf_counter() - self._started_at, 1e-9)
        # One critical section copies every counter, so a concurrent step()
        # can never produce a torn pair (e.g. a fusion rate above 1.0);
        # percentiles and rates are computed outside the lock.
        with self._telemetry_lock:
            completed = self._completed
            failed = self._failed
            fused_completed = self._fused_completed
            fast_path_completed = self._fast_path_completed
            latencies = list(self._latencies)
        pending = sum(len(state.pending) for state in self._streams.values()
                      if not state.closed)
        refits = sum(state.refits for state in self._streams.values())
        return MetricsSnapshot(
            source="streaming",
            uptime_seconds=uptime,
            submitted=completed + failed + pending,
            completed=completed,
            failed=failed,
            in_flight=pending,
            qps=rate(completed, uptime),
            latency_p50_seconds=percentile(latencies, 50.0),
            latency_p95_seconds=percentile(latencies, 95.0),
            latency_p99_seconds=percentile(latencies, 99.0),
            fusion_rate=rate(fused_completed, completed),
            fast_path_hit_rate=rate(fast_path_completed, completed),
            queue_depth=pending,
            extras={
                "streams": len([s for s in self._streams.values()
                                if not s.closed]),
                "refits": refits,
            },
        )

    # -- serving -------------------------------------------------------- #
    def push(self, stream_id: str, window: StreamWindow) -> None:
        """Queue ``window`` on its stream for the next :meth:`step`."""
        state = self._state(stream_id)
        if state.closed:
            raise ServiceError(f"stream {stream_id!r} is closed")
        state.pending.append(window)

    def step(self, max_windows: int = 1,
             gateway=None) -> List[StreamWindowResult]:
        """Serve pending windows of every stream, micro-batched together.

        Refits (when due) run first, serially in this process — they are
        rare by construction.  The impute requests of every stream then go
        through one ``submit``/``gather`` sweep of the wrapped service, so
        distinct streams' windows are served concurrently and the windows
        queued against one model are **fused** into shared forward calls.

        ``max_windows`` bounds how many pending windows each stream serves
        in this step: the default ``1`` keeps the historical one-window
        cadence, while a backlogged caller can drain ``max_windows=K`` (or
        ``max_windows=0`` for *all* pending windows) per stream in a single
        fused sweep.  A model superseded by a mid-step refit is retired only
        after the sweep, so windows already queued against it still serve.

        ``gateway`` routes the step's windows through a running
        :class:`repro.gateway.Gateway` instead of the service's own
        submit/gather sweep: the windows enter the gateway's ``"batch"``
        lane (so a backlog drain never starves live interactive traffic),
        its adaptive batcher fuses them with whatever else is in flight,
        and this call blocks until every window of the step resolves.  The
        gateway must serve the same model store as this streaming service.

        Failures never propagate across streams: each becomes a per-window
        error result.

        The wrapped service's submit/gather queue belongs to this streaming
        service: a foreign request queued directly on it would be drained
        by this step and its result silently lost, so that state is
        rejected up front.
        """
        if gateway is not None:
            if gateway.service.store is not self.service.store:
                raise ServiceError(
                    "the gateway serves a different model store than this "
                    "streaming service; build it over the same "
                    "ImputationService (Gateway(streaming.service, ...))")
            if not gateway.running:
                # step() blocks on the gateway's futures; without a worker
                # pool they would never resolve and the step would hang.
                raise ServiceError(
                    "the gateway's worker pool is not running; call "
                    "gateway.start() before routing a step through it")
        if self.service.pending_count():
            raise ServiceError(
                f"the wrapped ImputationService has "
                f"{self.service.pending_count()} foreign pending request(s); "
                "StreamingService owns its service's submit/gather queue — "
                "gather() them first or use a dedicated service")
        if max_windows < 0:
            raise ValidationError(
                f"max_windows must be >= 0, got {max_windows}")
        active: List[StreamWindowResult] = []
        requests: Dict[str, StreamWindowResult] = {}
        futures: Dict[str, object] = {}
        retired: List[str] = []
        for state in self._streams.values():
            if state.closed or not state.pending:
                continue
            take = len(state.pending) if max_windows == 0 \
                else min(max_windows, len(state.pending))
            windows = [state.pending.pop(0) for _ in range(take)]
            for window in windows:
                result = StreamWindowResult(
                    stream_id=state.stream_id, window_index=window.index,
                    start=window.start, stop=window.stop)
                active.append(result)
                if state.refit_every or state.model_id is None:
                    # Warm-start streams that never refit skip the history
                    # copy: nothing would ever read it.
                    state.history.absorb(window)
                state.windows_since_fit += 1
                try:
                    # Refit *and* submit failures stay on their stream: a
                    # submit that raises (e.g. the model was pruned from a
                    # shared store, or the gateway queue is full) must
                    # neither abort the step nor strand the sibling
                    # requests already queued.
                    if self._needs_refit(state):
                        result.refit = True
                        result.refit_seconds = self._refit(state, retired)
                    request_id = f"{state.stream_id}.w{window.index:06d}"
                    # A floating ref, not the bare string: versioned
                    # lineages re-resolve ``@latest`` per step (canary
                    # promotions reroute the stream), unversioned models
                    # resolve to themselves bit-identically — and internal
                    # traffic never draws the bare-string deprecation
                    # warning.
                    request = ImputeRequest(
                        model_id=ModelRef.latest(state.model_id),
                        data=window.tensor,
                        request_id=request_id)
                    if gateway is None:
                        self.service.submit(request)
                    else:
                        futures[request_id] = gateway.submit(
                            request, priority="batch")
                except Exception:
                    import traceback

                    result.error = traceback.format_exc()
                    state.errors[window.index] = result.error
                    with self._telemetry_lock:
                        self._failed += 1
                    continue
                requests[request_id] = result

        if gateway is None:
            served = self.service.gather(raise_on_error=False)
            errors = dict(self.service.last_errors)
        else:
            served, errors = [], {}
            for request_id, future in futures.items():
                try:
                    served.append(future.result())
                except Exception:
                    import traceback

                    errors[request_id] = traceback.format_exc()
        for impute_result in served:
            result = requests.get(impute_result.request_id)
            if result is None:
                continue
            result.completed = impute_result.completed
            result.latency_seconds = impute_result.latency_seconds
            state = self._streams[result.stream_id]
            state.windows_served += 1
            with self._telemetry_lock:
                self._completed += 1
                self._latencies.append(
                    float(impute_result.latency_seconds))
                if impute_result.fused:
                    self._fused_completed += 1
                if impute_result.fast_path:
                    self._fast_path_completed += 1
        for request_id, error in errors.items():
            result = requests.get(request_id)
            if result is None:
                continue
            result.error = error
            self._streams[result.stream_id].errors[result.window_index] = error
            with self._telemetry_lock:
                self._failed += 1
        # A refit mid-step supersedes the stream's previous model; it is
        # dropped only now, after the sweep, because windows accepted before
        # the refit were still queued against it.
        for model_id in retired:
            self._discard_model(model_id)
        return active

    def run(self, streams: Mapping[str, Union[WindowedStream,
                                              Iterable[StreamWindow]]],
            ) -> Dict[str, List[StreamWindowResult]]:
        """Replay finite streams to exhaustion, round-robin.

        Every round pushes the next window of each still-active stream and
        serves them in one micro-batched :meth:`step`; streams of unequal
        length simply drop out of later rounds.  Streams not yet opened are
        opened with the service defaults.  Windows already pushed on *other*
        open streams are served by the same steps and included in the
        returned mapping too.
        """
        iterators: Dict[str, Iterator[StreamWindow]] = {}
        results: Dict[str, List[StreamWindowResult]] = {}
        for stream_id, source in streams.items():
            if stream_id not in self._streams:
                self.open_stream(stream_id)
            iterators[stream_id] = iter(source)
            results[stream_id] = []
        while iterators:
            exhausted = []
            for stream_id, iterator in iterators.items():
                try:
                    self.push(stream_id, next(iterator))
                except StopIteration:
                    exhausted.append(stream_id)
            for stream_id in exhausted:
                del iterators[stream_id]
            if not iterators:
                break
            for result in self.step():
                results.setdefault(result.stream_id, []).append(result)
        # Drain: pre-pushed windows shift serving one round behind the
        # push cadence, so tails may still be queued when the iterators
        # run dry.  step() pops one window per stream per call, so this
        # terminates.
        while any(state.pending and not state.closed
                  for state in self._streams.values()):
            for result in self.step():
                results.setdefault(result.stream_id, []).append(result)
        return results

    # -- internals ------------------------------------------------------ #
    def _state(self, stream_id: str) -> StreamState:
        try:
            return self._streams[stream_id]
        except KeyError:
            known = ", ".join(sorted(self._streams)) or "<none>"
            raise ServiceError(
                f"unknown stream {stream_id!r}; open streams: {known}"
            ) from None

    # -- fast path ------------------------------------------------------ #
    def wait_for_fast_path(self, stream_id: str,
                           timeout: Optional[float] = None) -> bool:
        """Block until the stream's current model has serving tables.

        Streams whose method builds fast-path lookup tables in the
        background (``DeepMVIConfig(fast_path="background")``) serve
        full-forward — stale-but-correct — between a refit and the table
        build landing; this waits that gap out (tests, controlled
        benchmarks).  Returns False when the stream has no fitted model,
        the method has no fast path, or the wait timed out.
        """
        state = self._state(stream_id)
        if state.model_id is None:
            return False
        imputer = self.service.store.peek(state.model_id)
        if imputer is None:
            try:
                imputer = self.service.store.get(state.model_id)
            except ServiceError:
                return False
        waiter = getattr(imputer, "wait_for_fast_path", None)
        if not callable(waiter):
            return False
        return bool(waiter(timeout))

    def _needs_refit(self, state: StreamState) -> bool:
        return refit_due(state.model_id is not None, state.windows_since_fit,
                         state.refit_every)

    def _refit(self, state: StreamState,
               retired: Optional[List[str]] = None) -> float:
        history = state.history.tensor()
        if history is None:
            raise ServiceError(
                f"stream {state.stream_id!r} has no history to fit on")
        model_id = f"{state.stream_id}-r{state.refits:04d}"
        superseded = state.model_id if state.model_owned else None
        state.model_id = self.service.fit(
            history, method=state.method, model_id=model_id,
            **state.method_kwargs)
        state.model_owned = True
        state.refits += 1
        state.windows_since_fit = 0
        if superseded is not None:
            if retired is not None:
                # Deferred retirement: the caller still has requests queued
                # against the superseded model in the current sweep.
                retired.append(superseded)
            else:
                self._discard_model(superseded)
        return self.service.fit_seconds.get(model_id, 0.0)

    def _discard_model(self, model_id: str) -> None:
        """Drop one of *our* fitted models and its serving bookkeeping.

        Keeps the store bounded over long streams: only the newest model
        serves.  Callers guarantee the id was fitted by this streaming
        service — a caller's warm-start model is never touched.
        """
        self.service.store.discard(model_id)
        self.service.fit_counts.pop(model_id, None)
        self.service.fit_seconds.pop(model_id, None)

    def _evict_owned_model(self, state: StreamState) -> None:
        if state.model_owned and state.model_id is not None:
            self._discard_model(state.model_id)
            state.model_id = None
            state.model_owned = False
