"""Dimension metadata for multidimensional time-series tensors.

The paper models a dataset as an (n+1)-dimensional tensor whose first ``n``
dimensions are categorical (or vector-valued) "member" dimensions — e.g.
items and stores in retail data — and whose last dimension is time.  A
:class:`Dimension` describes one of the ``n`` member dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import DimensionError

Member = Union[str, int, np.ndarray]


@dataclass
class Dimension:
    """A non-time dimension of the data tensor.

    Parameters
    ----------
    name:
        Human-readable dimension name (e.g. ``"store"``).
    members:
        The discrete members of the dimension.  Categorical members are
        strings or ints; vector members are 1-D numpy arrays (e.g. a store's
        latitude/longitude), in which case every member must share the same
        vector length.
    """

    name: str
    members: List[Member] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise DimensionError("dimension name must be non-empty")
        if len(self.members) == 0:
            raise DimensionError(f"dimension {self.name!r} has no members")
        vector_lengths = {
            len(np.atleast_1d(m)) for m in self.members
            if isinstance(m, np.ndarray)
        }
        if len(vector_lengths) > 1:
            raise DimensionError(
                f"dimension {self.name!r} mixes vector members of different lengths")
        if vector_lengths and any(
                not isinstance(m, np.ndarray) for m in self.members):
            raise DimensionError(
                f"dimension {self.name!r} mixes vector and categorical members")

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    @property
    def is_vector_valued(self) -> bool:
        """Whether members are real-valued vectors instead of categories."""
        return isinstance(self.members[0], np.ndarray)

    @property
    def vector_dim(self) -> Optional[int]:
        """Length of vector members, or ``None`` for categorical dimensions."""
        if not self.is_vector_valued:
            return None
        return int(np.atleast_1d(self.members[0]).shape[0])

    def index_of(self, member: Member) -> int:
        """Position of ``member`` within the dimension."""
        if self.is_vector_valued:
            for i, candidate in enumerate(self.members):
                if np.array_equal(candidate, member):
                    return i
            raise DimensionError(
                f"member not found in vector dimension {self.name!r}")
        try:
            return self.members.index(member)
        except ValueError as exc:
            raise DimensionError(
                f"member {member!r} not in dimension {self.name!r}") from exc

    def member_matrix(self) -> np.ndarray:
        """Numeric representation of members for embedding initialisation.

        Vector dimensions return the stacked member vectors
        ``(size, vector_dim)``; categorical dimensions return one-hot-like
        integer identities ``(size, 1)``.
        """
        if self.is_vector_valued:
            return np.stack([np.atleast_1d(m).astype(float) for m in self.members])
        return np.arange(self.size, dtype=float)[:, None]

    @classmethod
    def categorical(cls, name: str, size: int, prefix: Optional[str] = None) -> "Dimension":
        """Create a categorical dimension with ``size`` auto-named members."""
        prefix = prefix if prefix is not None else name
        return cls(name=name, members=[f"{prefix}_{i}" for i in range(size)])

    @classmethod
    def vector(cls, name: str, vectors: Sequence[np.ndarray]) -> "Dimension":
        """Create a vector-valued dimension from a sequence of 1-D arrays."""
        return cls(name=name, members=[np.asarray(v, dtype=float) for v in vectors])

    def __len__(self) -> int:
        return self.size
