"""Tests of nn utility helpers."""

import numpy as np

from repro.nn.utils import (
    exponential_moving_average,
    minibatches,
    numerical_gradient,
    seeded_rng,
)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(7).normal(size=5)
        b = seeded_rng(7).normal(size=5)
        np.testing.assert_allclose(a, b)

    def test_different_seed_differs(self):
        assert not np.allclose(seeded_rng(1).normal(size=5), seeded_rng(2).normal(size=5))


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda arr: float((arr ** 2).sum()), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-5)

    def test_matrix_input(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        grad = numerical_gradient(lambda arr: float(arr.sum()), x)
        np.testing.assert_allclose(grad, np.ones((2, 3)), atol=1e-6)


class TestMinibatches:
    def test_covers_every_index_exactly_once(self, rng):
        batches = list(minibatches(23, 5, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(23))
        assert len(batches) == 5
        assert all(len(batch) == 5 for batch in batches[:-1])
        assert len(batches[-1]) == 3

    def test_shuffles(self, rng):
        batches = list(minibatches(100, 100, rng))
        assert not np.array_equal(batches[0], np.arange(100))


class TestEMA:
    def test_constant_series_unchanged(self):
        assert exponential_moving_average([2.0, 2.0, 2.0]) == [2.0, 2.0, 2.0]

    def test_smooths_towards_new_values(self):
        smoothed = exponential_moving_average([0.0, 10.0], alpha=0.5)
        assert smoothed == [0.0, 5.0]

    def test_empty_input(self):
        assert exponential_moving_average([]) == []
