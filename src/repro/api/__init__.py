"""Public service-layer API of the repro package.

This is the documented entry point for *using* the imputation system (as
opposed to reproducing the paper's experiment grids, which is
:mod:`repro.evaluation`).  Three levels of ceremony:

One-liner — fit and impute in a single call::

    from repro import api

    completed = api.impute(incomplete_tensor, method="deepmvi")

Fit once, serve many — the workflow the paper's model is built for::

    service = api.ImputationService()
    model_id = service.fit(training_tensor, method="deepmvi")
    result = service.impute(api.ImputeRequest(model_id=model_id,
                                              data=new_scenario))

Batched serving — queue requests and micro-batch them per model::

    for scenario in scenarios:
        service.submit(api.ImputeRequest(model_id=model_id, data=scenario))
    results = service.gather()      # one model load, N imputations

Methods resolve through the capability-aware plugin registry
(:mod:`repro.baselines.registry`): discover them with
:func:`list_methods` / :func:`list_method_infos`, add your own with the
:func:`register_imputer` decorator.
"""

from repro.api.refs import ModelRef, check_model_id
from repro.api.requests import (
    FitRequest,
    ImputeRequest,
    ImputeResult,
    tensor_from_dict,
    tensor_to_dict,
)
from repro.api.model_cache import LRUModelCache
from repro.api.telemetry import MetricsSnapshot
from repro.api.versioning import VersionRegistry
from repro.api.service import (
    DirectoryBackend,
    ImputationService,
    ModelStore,
    as_tensor,
    impute,
    make_imputer,
)
from repro.baselines.registry import (
    MethodInfo,
    get_registry,
    list_method_infos,
    list_methods,
    method_info,
    register_imputer,
)

__all__ = [
    "DirectoryBackend",
    "FitRequest",
    "ImputationService",
    "ImputeRequest",
    "ImputeResult",
    "LRUModelCache",
    "MethodInfo",
    "MetricsSnapshot",
    "ModelRef",
    "ModelStore",
    "VersionRegistry",
    "as_tensor",
    "check_model_id",
    "get_registry",
    "impute",
    "list_method_infos",
    "list_methods",
    "make_imputer",
    "method_info",
    "register_imputer",
    "tensor_from_dict",
    "tensor_to_dict",
]
