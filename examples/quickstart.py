"""Quickstart: impute missing values through the public service API.

Run with::

    python examples/quickstart.py [--fast]

The script

1. generates the synthetic stand-in for the paper's AirQ dataset and hides
   10%-blocks of values from every series (the MCAR scenario),
2. completes the tensor with the ``repro.api.impute`` one-liner,
3. then shows the production flow: fit DeepMVI **once** with
   :class:`repro.api.ImputationService` and serve several different
   missing-value patterns from that single fitted model,
4. reports the mean absolute error of each method on the hidden cells.
"""

import argparse

from repro import api
from repro.core.config import DeepMVIConfig
from repro.data.datasets import load_dataset
from repro.data.missing import MissingScenario, apply_scenario
from repro.evaluation.metrics import mae


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="use a tiny dataset and model (for smoke testing)")
    parser.add_argument("--dataset", default="airq", help="dataset name")
    args = parser.parse_args()

    size = "tiny" if args.fast else "small"
    data = load_dataset(args.dataset, size=size, seed=0)
    print(f"Loaded {data!r}")

    scenario = MissingScenario("mcar", {"incomplete_fraction": 1.0, "block_size": 10})
    incomplete, missing_mask = apply_scenario(data, scenario, seed=1)
    print(f"Hidden {int(missing_mask.sum())} cells "
          f"({incomplete.missing_fraction:.1%} of the dataset)")

    # ------------------------------------------------------------------ #
    # 1. the one-liner: fit + impute in a single call
    # ------------------------------------------------------------------ #
    config = DeepMVIConfig.fast() if args.fast else DeepMVIConfig(
        max_epochs=25, samples_per_epoch=512, patience=5)
    completed = api.impute(incomplete, method="deepmvi", config=config)
    print(f"\napi.impute one-liner: DeepMVI MAE = "
          f"{mae(completed, data, missing_mask):.3f}")

    # ------------------------------------------------------------------ #
    # 2. fit once, serve many: the ImputationService flow
    # ------------------------------------------------------------------ #
    service = api.ImputationService()
    methods = {"DeepMVI": ("deepmvi", {"config": config}),
               "CDRec": ("cdrec", {}),
               "SVDImp": ("svdimp", {})}
    print(f"\n{'method':<10} {'MAE':>8} {'seconds':>8}")
    model_ids = {}
    for label, (method, kwargs) in methods.items():
        model_ids[label] = service.fit(incomplete, method=method, **kwargs)
        result = service.impute(api.ImputeRequest(model_id=model_ids[label]))
        error = mae(result.completed, data, missing_mask)
        seconds = service.fit_seconds[model_ids[label]] + result.runtime_seconds
        print(f"{label:<10} {error:>8.3f} {seconds:>8.1f}")

    # The fitted DeepMVI model now answers *new* missing patterns without
    # retraining: queue several requests and micro-batch them.
    n_requests = 2 if args.fast else 3
    masks = []
    for index in range(n_requests):
        other, other_mask = apply_scenario(data, scenario, seed=2 + index)
        service.submit(api.ImputeRequest(model_id=model_ids["DeepMVI"],
                                         data=other))
        masks.append(other_mask)
    results = service.gather()
    fits = service.fit_counts[model_ids["DeepMVI"]]
    print(f"\nServed {len(results)} new patterns from {fits} DeepMVI fit:")
    for result, other_mask in zip(results, masks):
        print(f"  {result.request_id}: MAE = "
              f"{mae(result.completed, data, other_mask):.3f}")


if __name__ == "__main__":
    main()
