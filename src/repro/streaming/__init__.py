"""Streaming imputation: windowed incremental serving of live feeds.

The batch stack (engine + :mod:`repro.api`) answers "impute this
snapshot"; this package answers "keep imputing while the data keeps
arriving".  It is organised as:

:mod:`repro.streaming.windows`
    :class:`StreamWindow` / :class:`WindowedStream` — chunk a recorded
    tensor or a live tick feed into overlapping sliding windows — and the
    overlap-deduplicating, bounded :class:`HistoryBuffer`.
:mod:`repro.streaming.imputer`
    The :class:`StreamingImputer` protocol (``update`` / ``impute_window``)
    and :class:`WindowedStreamingImputer`, which serves any registry method
    incrementally: warm-start from a fitted artifact, refit on the bounded
    history every K windows.
:mod:`repro.streaming.service`
    :class:`StreamingService` — many concurrent streams over one
    :class:`~repro.api.ImputationService`, with per-step micro-batching
    across streams and per-stream failure isolation.
:mod:`repro.streaming.replay`
    :func:`replay` — feed a dataset through the serving path under a
    live-failure scenario (``drift_outage``, ``correlated_failure``,
    ``periodic_outage``, or any classic one) and score every window
    (per-window MAE, latency, windows/sec).

Streaming-capable methods are tagged in the registry::

    from repro.api import list_methods

    list_methods(tags=("streaming",))
"""

from repro.streaming.imputer import StreamingImputer, WindowedStreamingImputer
from repro.streaming.replay import ReplayReport, WindowScore, replay
from repro.streaming.service import (
    StreamingService,
    StreamState,
    StreamWindowResult,
)
from repro.streaming.windows import HistoryBuffer, StreamWindow, WindowedStream

__all__ = [
    "HistoryBuffer",
    "ReplayReport",
    "StreamState",
    "StreamWindow",
    "StreamWindowResult",
    "StreamingImputer",
    "StreamingService",
    "WindowScore",
    "WindowedStream",
    "WindowedStreamingImputer",
    "replay",
]
