"""Executor tests: serial/parallel equivalence, caching, resume, errors."""

import pytest

from repro.baselines.base import BaseImputer
from repro.data.missing import MissingScenario
from repro.engine.cache import ResultCache
from repro.engine.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.jobs import DatasetSpec, JobSpec, MethodSpec, compile_grid
from repro.evaluation.runner import ExperimentRunner


class BombImputer(BaseImputer):
    name = "Bomb"

    def fit_impute(self, tensor):
        raise RuntimeError("boom")


def _grid(small_panel, methods=("mean", "interpolation")):
    scenarios = [MissingScenario("miss_disj"),
                 MissingScenario("blackout", {"block_size": 5})]
    return compile_grid([small_panel], scenarios, list(methods), seed=0)


def _cell(result):
    return (result.dataset, result.scenario, result.method,
            result.mae, result.rmse)


class TestSerialExecutor:
    def test_results_in_job_order(self, small_panel):
        jobs = _grid(small_panel)
        results = SerialExecutor().run(jobs)
        assert [job_result.key for job_result in results] == \
            [job.key() for job in jobs]
        assert all(job_result.ok for job_result in results)

    def test_error_capture_does_not_abort_sweep(self, small_panel):
        jobs = _grid(small_panel, methods=["mean", BombImputer()])
        executor = SerialExecutor()
        results = executor.run(jobs)
        assert executor.last_report.failed == 2
        assert sum(job_result.ok for job_result in results) == 2
        assert all("boom" in job_result.error
                   for job_result in results if not job_result.ok)

    def test_progress_callback_fires_per_job(self, small_panel):
        jobs = _grid(small_panel)
        seen = []
        SerialExecutor().run(jobs, progress=lambda done, total, jr:
                             seen.append((done, total, jr.ok)))
        assert seen == [(1, 4, True), (2, 4, True), (3, 4, True), (4, 4, True)]


class TestParallelExecutor:
    def test_matches_serial_results(self, small_panel):
        jobs = _grid(small_panel)
        serial = SerialExecutor().run(jobs)
        parallel = ParallelExecutor(workers=2).run(jobs)
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert _cell(a.result) == _cell(b.result)

    def test_worker_errors_are_captured(self, small_panel):
        jobs = _grid(small_panel, methods=["mean", BombImputer()])
        executor = ParallelExecutor(workers=2)
        results = executor.run(jobs)
        assert executor.last_report.failed == 2
        assert sum(job_result.ok for job_result in results) == 2

    def test_make_executor_picks_by_width(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)


class TestCacheAndResume:
    def test_rerun_executes_zero_jobs(self, small_panel, tmp_path):
        jobs = _grid(small_panel)
        cache = ResultCache(tmp_path)
        first = SerialExecutor()
        before = first.run(jobs, cache=cache)
        assert first.last_report.executed == 4

        second = SerialExecutor()
        after = second.run(jobs, cache=ResultCache(tmp_path))
        assert second.last_report.executed == 0
        assert second.last_report.from_cache == 4
        for a, b in zip(before, after):
            assert b.from_cache
            assert _cell(a.result) == _cell(b.result)

    def test_resume_after_partial_failure_retries_only_failures(
            self, small_panel, tmp_path):
        jobs = _grid(small_panel, methods=["mean", BombImputer()])
        first = SerialExecutor()
        first.run(jobs, cache=ResultCache(tmp_path))
        assert first.last_report.executed == 4
        assert first.last_report.failed == 2

        # Failed cells were not cached: a resume retries exactly those.
        second = SerialExecutor()
        second.run(jobs, cache=ResultCache(tmp_path))
        assert second.last_report.from_cache == 2
        assert second.last_report.executed == 2
        assert second.last_report.failed == 2

    def test_parallel_run_fills_and_reads_cache(self, small_panel, tmp_path):
        jobs = _grid(small_panel)
        executor = ParallelExecutor(workers=2)
        executor.run(jobs, cache=ResultCache(tmp_path))
        assert executor.last_report.executed == 4

        resumed = ParallelExecutor(workers=2)
        resumed.run(jobs, cache=ResultCache(tmp_path))
        assert resumed.last_report.executed == 0
        assert resumed.last_report.from_cache == 4

    def test_cache_ignores_truncated_tail_line(self, small_panel, tmp_path):
        jobs = _grid(small_panel)
        cache = ResultCache(tmp_path)
        SerialExecutor().run(jobs, cache=cache)
        with cache.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "half-written')
        assert len(ResultCache(tmp_path)) == 4


class TestRunnerFacade:
    def test_run_grid_serial_parallel_equal(self, small_panel):
        runner = ExperimentRunner(methods=["mean", "interpolation"])
        scenarios = [MissingScenario("miss_disj"),
                     MissingScenario("blackout", {"block_size": 5})]
        serial = runner.run_grid([small_panel], scenarios)
        parallel = runner.run_grid([small_panel], scenarios, workers=2)
        assert [_cell(r) for r in serial] == [_cell(r) for r in parallel]

    def test_run_grid_cache_dir_resumes(self, small_panel, tmp_path):
        runner = ExperimentRunner(methods=["mean"], cache_dir=str(tmp_path))
        scenarios = [MissingScenario("miss_disj")]
        runner.run_grid([small_panel], scenarios)
        assert runner.last_report.executed == 1
        runner.run_grid([small_panel], scenarios)
        assert runner.last_report.executed == 0
        assert runner.last_report.from_cache == 1

    def test_run_grid_survives_failing_method(self, small_panel):
        runner = ExperimentRunner(methods=["mean", BombImputer()])
        results = runner.run_grid([small_panel], [MissingScenario("miss_disj")])
        assert [r.method for r in results] == ["Mean"]
        assert runner.last_report.failed == 1
        assert "boom" in runner.last_report.failures[0].error

    def test_run_cell_propagates_errors(self, small_panel):
        runner = ExperimentRunner(methods=["mean"])
        with pytest.raises(RuntimeError, match="boom"):
            runner.run_cell(small_panel, MissingScenario("miss_disj"),
                            BombImputer())

    def test_best_method_per_cell_skips_non_finite(self):
        from repro.engine.jobs import ExperimentResult
        results = [
            ExperimentResult("d", "s", "Diverged", mae=float("nan"), rmse=1.0,
                             runtime_seconds=1, missing_cells=5),
            ExperimentResult("d", "s", "Exploded", mae=float("inf"), rmse=1.0,
                             runtime_seconds=1, missing_cells=5),
            ExperimentResult("d", "s", "Fine", mae=0.4, rmse=0.5,
                             runtime_seconds=1, missing_cells=5),
            ExperimentResult("d2", "s", "Diverged", mae=float("nan"), rmse=1.0,
                             runtime_seconds=1, missing_cells=5),
        ]
        assert ExperimentRunner.best_method_per_cell(results) == \
            {("d", "s"): "Fine"}


class TestArtifactJobsBypassCache:
    def test_cached_metrics_do_not_skip_artifact_write(self, small_panel,
                                                       tmp_path):
        """A job that must save an artifact re-executes on a cache hit, so
        the fitted imputer is actually written."""
        from repro.engine.jobs import DatasetSpec, JobSpec, MethodSpec

        plain = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                        scenario=MissingScenario("miss_disj"),
                        method=MethodSpec(name="mean"))
        cache = ResultCache(tmp_path / "cache")
        SerialExecutor().run([plain], cache=cache)

        artifact_dir = tmp_path / "artifact"
        saving = JobSpec(dataset=plain.dataset, scenario=plain.scenario,
                         method=plain.method, artifact_path=str(artifact_dir))
        executor = SerialExecutor()
        executor.run([saving], cache=ResultCache(tmp_path / "cache"))
        assert executor.last_report.executed == 1
        assert (artifact_dir / "manifest.json").exists()

        # With the artifact in place, the cache hit is honoured again.
        resumed = SerialExecutor()
        resumed.run([saving], cache=ResultCache(tmp_path / "cache"))
        assert resumed.last_report.from_cache == 1
