"""JSONL-backed result store keyed by job hash.

The cache makes sweeps resumable: every completed cell is appended to
``results.jsonl`` under its deterministic :meth:`JobSpec.key`, and an
executor consults the cache before running a job — matching cells are
served from disk and never re-executed.  Failed jobs are *not* cached, so a
re-run retries exactly the cells that are still missing.

The file is append-only and each line is self-contained, so a sweep killed
mid-write loses at most its final (truncated) line, which is skipped on the
next load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.jobs import JobResult

RESULTS_FILENAME = "results.jsonl"


class ResultCache:
    """Persistent map ``job key -> JobResult`` stored as JSON lines."""

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / RESULTS_FILENAME
        self._records: Dict[str, JobResult] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail line from an interrupted run
                result = JobResult.from_record(record, from_cache=True)
                if result.ok:
                    self._records[result.key] = result

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[JobResult]:
        """Cached result for ``key``, or ``None``."""
        return self._records.get(key)

    def put(self, job_result: JobResult) -> None:
        """Persist a successful result; errors and duplicates are ignored."""
        if not job_result.ok or job_result.key in self._records:
            return
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(job_result.to_record()) + "\n")
            handle.flush()
        self._records[job_result.key] = JobResult(
            key=job_result.key, result=job_result.result, from_cache=True)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)
