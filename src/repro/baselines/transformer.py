"""Vanilla transformer imputation baseline (Section 2.3.2 / Table 2).

Each time step of a series is a token: its (masked) value and availability
flag are linearly embedded, a sinusoidal positional encoding is added, and a
stack of standard multi-head self-attention + feed-forward blocks produces a
per-position representation from which the value is regressed.  Training
masks random blocks of observed values and supervises the reconstruction —
this is the "off-the-shelf deep-learning component" DeepMVI is compared
against for both accuracy (Table 2) and runtime (Figure 10a).

Because attention here runs over *individual time steps* (not DeepMVI's
non-overlapping windows), its context length — and hence its runtime — is a
factor ``w`` larger for the same temporal span, which reproduces the paper's
observation that DeepMVI is several times faster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseImputer
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import NotFittedError
from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import LayerNorm, Linear, Module, ReLU, Sequential
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


class _TransformerBlock(Module):
    """Pre-norm self-attention + feed-forward block."""

    def __init__(self, model_dim: int, n_heads: int, rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadAttention(model_dim, n_heads, rng=rng)
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.feed_forward = Sequential(
            Linear(model_dim, 2 * model_dim, rng=rng), ReLU(),
            Linear(2 * model_dim, model_dim, rng=rng))

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        normed = self.norm1(x)
        attended, _ = self.attention(normed, normed, normed, mask=mask)
        x = x + attended
        return x + self.feed_forward(self.norm2(x))


class _TransformerNetwork(Module):
    """Token-per-time-step transformer for one-dimensional series."""

    def __init__(self, model_dim: int, n_heads: int, n_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_proj = Linear(2, model_dim, rng=rng)
        self.blocks = [_TransformerBlock(model_dim, n_heads, rng) for _ in range(n_layers)]
        self.output_proj = Linear(model_dim, 1, rng=rng)
        self.model_dim = model_dim

    def forward(self, values: np.ndarray, mask: np.ndarray) -> Tensor:
        """``values``/``mask`` are ``(B, L)``; returns ``(B, L)`` predictions."""
        batch, length = values.shape
        tokens = Tensor(np.stack([values * mask, mask], axis=-1))
        x = self.input_proj(tokens)
        x = x + Tensor(F.positional_encoding(length, self.model_dim)[None])
        # Attention mask: every query may look at any *observed* position.
        attention_mask = np.broadcast_to(
            mask[:, None, :], (batch, length, length)).copy()
        for block in self.blocks:
            x = block(x, attention_mask)
        return self.output_proj(x).reshape(batch, length)


class TransformerImputer(BaseImputer):
    """Off-the-shelf transformer applied to missing value imputation."""

    name = "Transformer"
    _fitted_attributes = ("network", "_matrix", "_mask", "_mean", "_std",
                         "_fitted_tensor")

    def __init__(self, model_dim: int = 32, n_heads: int = 4, n_layers: int = 1,
                 crop_length: int = 96, n_epochs: int = 20, batch_size: int = 16,
                 learning_rate: float = 1e-2, artificial_missing: float = 0.15,
                 seed: int = 0):
        self.model_dim = model_dim
        self.n_heads = n_heads
        self.n_layers = n_layers
        self.crop_length = crop_length
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.artificial_missing = artificial_missing
        self.seed = seed
        self.network: Optional[_TransformerNetwork] = None

    # ------------------------------------------------------------------ #
    def fit(self, tensor: TimeSeriesTensor) -> "TransformerImputer":
        rng = np.random.default_rng(self.seed)
        normalised, self._mean, self._std = tensor.normalised()
        matrix, mask = normalised.to_matrix()
        matrix = np.where(mask == 1, matrix, 0.0)
        self._matrix, self._mask = matrix, mask
        self._fitted_tensor = tensor

        n_series, length = matrix.shape
        crop = min(self.crop_length, length)
        self.network = _TransformerNetwork(
            self.model_dim, self.n_heads, self.n_layers, rng)
        optimizer = Adam(self.network.parameters(), lr=self.learning_rate)

        for _ in range(self.n_epochs):
            rows = rng.integers(0, n_series, size=self.batch_size)
            starts = rng.integers(0, max(1, length - crop + 1), size=self.batch_size)
            values = np.stack([matrix[r, s:s + crop] for r, s in zip(rows, starts)])
            avail = np.stack([mask[r, s:s + crop] for r, s in zip(rows, starts)])
            # Hide random contiguous blocks of observed values.
            visible = avail.copy()
            for i in range(self.batch_size):
                block = int(rng.integers(1, max(2, crop // 8)))
                start = int(rng.integers(0, crop - block))
                visible[i, start:start + block] = 0.0
            prediction = self.network(values, visible)
            loss = mse_loss(prediction, Tensor(values), mask=avail * (1.0 - visible))
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
        return self

    # ------------------------------------------------------------------ #
    def impute(self, tensor: Optional[TimeSeriesTensor] = None) -> TimeSeriesTensor:
        if self.network is None:
            raise NotFittedError("call fit() before impute()")
        if tensor is None:
            tensor = self._fitted_tensor
        matrix, mask = self._matrix, self._mask
        n_series, length = matrix.shape
        crop = min(self.crop_length, length)
        predictions = np.zeros_like(matrix)
        counts = np.zeros_like(matrix)

        self.network.eval()
        with no_grad():
            for start in range(0, length, crop):
                stop = min(start + crop, length)
                begin = max(0, stop - crop)
                values = matrix[:, begin:stop]
                avail = mask[:, begin:stop]
                output = self.network(values, avail).data
                predictions[:, begin:stop] += output
                counts[:, begin:stop] += 1.0
        predictions /= np.maximum(counts, 1.0)
        completed = np.where(mask == 1, matrix, predictions)
        completed = completed * self._std + self._mean
        return tensor.fill(completed.reshape(tensor.values.shape))
