#!/usr/bin/env python
"""Standalone entry point for the mypy type-coverage ratchet.

Usage (from the repo root, as CI does)::

    python tools/mypy_ratchet.py --baseline tools/mypy_baseline.json src/repro

Grow = fail, shrink = baseline auto-tightens; see
:mod:`repro.analysis.ratchet` for the semantics.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.ratchet import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
