"""Property-based gradient checks of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.nn.utils import numerical_gradient

_settings = settings(max_examples=25, deadline=None)


def small_arrays(min_side=1, max_side=4):
    shapes = hnp.array_shapes(min_dims=1, max_dims=3, min_side=min_side, max_side=max_side)
    return hnp.arrays(
        dtype=np.float64,
        shape=shapes,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


@_settings
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    tensor = Tensor(x, requires_grad=True)
    tensor.sum().backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(x))


@_settings
@given(small_arrays())
def test_mean_gradient_is_uniform(x):
    tensor = Tensor(x, requires_grad=True)
    tensor.mean().backward()
    np.testing.assert_allclose(tensor.grad, np.full_like(x, 1.0 / x.size))


@_settings
@given(small_arrays())
def test_tanh_chain_matches_numerical(x):
    tensor = Tensor(x, requires_grad=True)
    out = (tensor.tanh() * 2.0 + 1.0).sum()
    out.backward()
    numeric = numerical_gradient(
        lambda arr: float((Tensor(arr).tanh() * 2.0 + 1.0).sum().item()), x)
    np.testing.assert_allclose(tensor.grad, numeric, atol=1e-4)


@_settings
@given(small_arrays(), small_arrays())
def test_add_gradient_shapes_match_inputs(x, y):
    a = Tensor(x, requires_grad=True)
    b = Tensor(y, requires_grad=True)
    try:
        out = a + b
    except ValueError:
        return  # shapes not broadcastable: nothing to check
    out.sum().backward()
    assert a.grad.shape == x.shape
    assert b.grad.shape == y.shape


@_settings
@given(small_arrays())
def test_mul_by_zero_gives_zero_gradient_to_other_factor(x):
    a = Tensor(x, requires_grad=True)
    zeros = Tensor(np.zeros_like(x))
    (a * zeros).sum().backward()
    np.testing.assert_allclose(a.grad, np.zeros_like(x))


@_settings
@given(small_arrays())
def test_softmax_output_is_probability_vector(x):
    out = F.softmax(Tensor(x), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), atol=1e-9)


@_settings
@given(st.data())
def test_masked_softmax_respects_arbitrary_masks(data):
    length = data.draw(st.integers(2, 6))
    x = np.array(data.draw(st.lists(st.floats(-5, 5), min_size=length, max_size=length)))
    mask = np.array(data.draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
                    dtype=float)
    out = F.masked_softmax(Tensor(x[None]), mask[None]).data[0]
    assert np.all(out[mask == 0] == 0)
    if mask.sum() > 0:
        np.testing.assert_allclose(out.sum(), 1.0, atol=1e-6)


@_settings
@given(small_arrays(max_side=3), small_arrays(max_side=3))
def test_matmul_gradient_matches_numerical_when_compatible(x, y):
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[0]:
        return
    a = Tensor(x, requires_grad=True)
    b = Tensor(y, requires_grad=True)
    (a @ b).sum().backward()
    numeric_a = numerical_gradient(
        lambda arr: float((Tensor(arr) @ Tensor(y)).sum().item()), x)
    numeric_b = numerical_gradient(
        lambda arr: float((Tensor(x) @ Tensor(arr)).sum().item()), y)
    np.testing.assert_allclose(a.grad, numeric_a, atol=1e-5)
    np.testing.assert_allclose(b.grad, numeric_b, atol=1e-5)
