"""Configuration of the DeepMVI model and its training procedure."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.exceptions import ConfigError


@dataclass
class DeepMVIConfig:
    """Hyper-parameters of DeepMVI (Section 4.3 of the paper).

    The paper's defaults are ``n_filters=32``, ``window=10`` (20 for large
    missing blocks), ``n_heads=4`` and ``embedding_dim=10``.  This
    reproduction keeps those semantics but defaults to a slightly smaller
    network (``n_filters=16``) and bounded temporal context so that the full
    benchmark grid runs on a laptop; set ``paper_scale()`` for the original
    sizes.

    Ablation flags (Section 5.5):

    ``use_temporal_transformer``
        Disable to reproduce the "No Temporal Transformer" ablation.
    ``use_context_window``
        Disable to replace the left/right window-context keys with plain
        positional-encoding keys ("No Context Window").
    ``use_kernel_regression``
        Disable to reproduce "No Kernel Regression".
    ``use_fine_grained``
        Disable to reproduce "No FineGrained".
    ``flatten_dimensions``
        Treat a multidimensional index as a single flat dimension
        (the DeepMVI1D variant of Section 5.5.4).
    """

    # -- architecture --------------------------------------------------- #
    n_filters: int = 16
    window: int = 10
    n_heads: int = 4
    embedding_dim: int = 10
    max_context_windows: int = 64
    kernel_gamma: float = 1.0
    top_l_siblings: int = 50

    # -- ablation switches ---------------------------------------------- #
    use_temporal_transformer: bool = True
    use_context_window: bool = True
    use_kernel_regression: bool = True
    use_fine_grained: bool = True
    flatten_dimensions: bool = False

    # -- training -------------------------------------------------------- #
    #: the paper uses 1e-3; this reproduction trains for far fewer gradient
    #: steps (laptop budgets), so the default is raised to compensate.
    learning_rate: float = 3e-3
    batch_size: int = 32
    max_epochs: int = 20
    samples_per_epoch: int = 512
    validation_fraction: float = 0.15
    patience: int = 3
    grad_clip: float = 5.0
    min_epochs: int = 2
    seed: int = 0
    verbose: bool = False

    # -- inference -------------------------------------------------------- #
    impute_batch_size: int = 256
    #: fast-path lookup tables (:mod:`repro.core.fast_path`): ``"fit"``
    #: builds them synchronously at fit time, ``"lazy"`` on first serve,
    #: ``"background"`` in a daemon thread spawned by ``fit()`` (serving
    #: falls back to the full forward until the build lands), ``"off"``
    #: disables the fast path entirely.
    fast_path: str = "fit"
    #: serve from tables at most this many seconds after their build;
    #: older tables are treated as a total miss (``None`` = no budget).
    fast_path_staleness_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_filters < 1:
            raise ConfigError("n_filters must be positive")
        if self.window < 2:
            raise ConfigError("window must be at least 2")
        if self.n_heads < 1:
            raise ConfigError("n_heads must be positive")
        if self.embedding_dim < 1:
            raise ConfigError("embedding_dim must be positive")
        if not 0.0 < self.validation_fraction < 0.9:
            raise ConfigError("validation_fraction must be in (0, 0.9)")
        if self.max_context_windows < 4:
            raise ConfigError("max_context_windows must be at least 4")
        if self.batch_size < 1 or self.samples_per_epoch < 1:
            raise ConfigError("batch_size and samples_per_epoch must be positive")
        if self.kernel_gamma <= 0:
            raise ConfigError("kernel_gamma must be positive")
        if self.fast_path not in ("fit", "lazy", "background", "off"):
            raise ConfigError(
                "fast_path must be one of 'fit', 'lazy', 'background', 'off'")
        if self.fast_path_staleness_seconds is not None \
                and self.fast_path_staleness_seconds <= 0:
            raise ConfigError(
                "fast_path_staleness_seconds must be positive when set")

    # ------------------------------------------------------------------ #
    def with_window_for_block_size(self, average_block_size: float) -> "DeepMVIConfig":
        """Return a copy applying the paper's rule: use ``window=20`` when the
        average missing-block length exceeds 100, else keep the default."""
        window = 20 if average_block_size > 100 else self.window
        return replace(self, window=window)

    def ablated(self, **flags: bool) -> "DeepMVIConfig":
        """Return a copy with the given ablation flags applied."""
        return replace(self, **flags)

    @classmethod
    def paper_scale(cls, **overrides) -> "DeepMVIConfig":
        """The paper's default hyper-parameters (n_filters=32, etc.)."""
        params = dict(n_filters=32, window=10, n_heads=4, embedding_dim=10,
                      max_context_windows=256)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def fast(cls, **overrides) -> "DeepMVIConfig":
        """A small configuration for unit tests and quick smoke runs."""
        params = dict(n_filters=8, window=5, n_heads=2, embedding_dim=4,
                      max_context_windows=16, max_epochs=3,
                      samples_per_epoch=64, batch_size=16, patience=2)
        params.update(overrides)
        return cls(**params)
