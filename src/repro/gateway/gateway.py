"""The concurrent serving gateway.

:class:`Gateway` turns the fit-once/serve-many
:class:`~repro.api.ImputationService` into a traffic-facing system: many
producer threads :meth:`submit` impute requests concurrently, and a small
pool of worker threads serves them through the fused
``execute_serving_batch`` hot path as fast as the hardware allows.

The pipeline::

    producers ──▶ RequestQueue ──▶ adaptive batcher ──▶ worker pool
                  (bounded,         (max_batch_size /    (LRU model cache,
                   2 lanes,          max_wait_ms)         fused impute_many)
                   deadlines)

Why a gateway beats calling ``service.impute()`` from every producer:

* requests against the same model and tensor structure are **micro-batched**
  into one fused forward call (``impute_many``), so a burst of N
  window-shaped requests costs a handful of network calls instead of N;
* the **bounded queue** sheds or back-pressures load instead of melting
  down, and **deadlines** stop the gateway from burning compute on
  requests nobody is waiting for anymore;
* **priority lanes** let interactive traffic overtake bulk backfills
  without starving them;
* hot models are pinned by an **LRU cache** over the model store, so
  serving never round-trips through disk artifacts in steady state;
* every request is accounted for in :meth:`stats` — QPS, queue depth,
  latency percentiles, fusion rate, cache hit rate.

Typical use::

    from repro.api import ImputationService
    from repro.gateway import Gateway, GatewayConfig

    service = ImputationService(store_dir="models/")
    model_id = service.fit(history, method="deepmvi")

    with Gateway(service, GatewayConfig(max_batch_size=16,
                                        max_wait_ms=5.0)) as gw:
        futures = [gw.submit(window, model_id=model_id)
                   for window in windows]
        completed = [f.result() for f in futures]
        print(gw.stats()["qps"], gw.stats()["fusion_rate"])
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.lockcheck import checked_lock
from repro.api.requests import ImputeRequest, ImputeResult
from repro.api.telemetry import MetricsSnapshot
from repro.api.service import (
    ImputationService,
    ServingBatch,
    _latency,
    coerce_impute_request,
    execute_serving_batch,
)
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
    ValidationError,
)
from repro.gateway.metrics import GatewayMetrics
from repro.obs import trace as obs_trace
from repro.gateway.queue import (
    GatewayFuture,
    LANES,
    QueuedRequest,
    RequestQueue,
)

__all__ = ["Gateway", "GatewayConfig"]

logger = logging.getLogger(__name__)


@dataclass
class GatewayConfig:
    """Tuning knobs of the serving gateway.

    The two that matter most, and their trade-off:

    ``max_batch_size``
        Upper bound on requests fused into one forward call.  Bigger
        batches amortise per-call overhead (higher throughput) but add
        queueing delay for the requests that fill them.
    ``max_wait_ms``
        How long an open batch waits for more same-group requests before
        dispatching anyway.  The latency price of batching: under light
        traffic every request pays up to this wait, under heavy traffic
        batches fill to ``max_batch_size`` long before it elapses.
    """

    #: total queued requests admitted across both lanes
    max_queue_depth: int = 256
    #: ``"reject"`` fails fast with :class:`QueueFullError` when full;
    #: ``"block"`` applies backpressure to producers
    admission: str = "reject"
    #: requests fused into one serving batch at most
    max_batch_size: int = 16
    #: how long an open batch waits for stragglers (milliseconds)
    max_wait_ms: float = 2.0
    #: serving worker threads.  Batching, not thread count, is the main
    #: throughput lever (the workers share the interpreter); extra workers
    #: mostly help when several models serve at once.
    workers: int = 1
    #: deadline applied to requests that do not bring their own
    #: (milliseconds; ``None`` means requests never expire)
    default_deadline_ms: Optional[float] = None
    #: starvation bound: the batch lane gets a turn at least once per
    #: ``interactive_burst + 1`` dispatches
    interactive_burst: int = 4
    #: bound on the in-memory LRU model cache created when the gateway
    #: builds its own service (requires ``store_dir``); ignored when an
    #: existing service is passed in
    max_cached_models: Optional[int] = None
    #: route batches whose every request hits the precomputed lookup
    #: tables (:mod:`repro.core.fast_path`) down a no-lock fast lane:
    #: pure table reads need no per-model serialisation, so fast-lane
    #: batches overlap freely with a full forward holding the model lock
    use_fast_path: bool = True
    #: head-sampling rate for request tracing (:mod:`repro.obs`): the
    #: fraction of submitted requests that carry a
    #: :class:`~repro.obs.TraceContext` when ``REPRO_TRACE=1``.  Sampling
    #: is decided once at the front door and the verdict travels with the
    #: request, so a trace is always complete or absent — never partial.
    #: Irrelevant (zero-cost) while tracing is disabled.
    trace_sample_rate: float = 1.0

    def validate(self) -> "GatewayConfig":
        if self.max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValidationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.workers < 1:
            raise ValidationError(
                f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_ms is not None \
                and self.default_deadline_ms <= 0:
            raise ValidationError(
                f"default_deadline_ms must be > 0 or None, "
                f"got {self.default_deadline_ms}")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValidationError(
                f"trace_sample_rate must be in [0, 1], "
                f"got {self.trace_sample_rate}")
        # max_queue_depth / admission / interactive_burst are validated by
        # RequestQueue, which owns those semantics.
        return self


class Gateway:
    """Concurrent serving front end over an :class:`ImputationService`.

    Parameters
    ----------
    service:
        The service whose fitted models this gateway serves.  Built fresh
        (``store_dir`` + ``config.max_cached_models``) when omitted.
    config:
        A :class:`GatewayConfig`; keyword overrides may be passed instead
        (``Gateway(service, max_batch_size=32)``).
    store_dir:
        Model-store directory for the self-built service.
    start:
        Start the worker pool immediately (default).  ``start=False``
        admits requests without serving them until :meth:`start` — useful
        for tests and for staging load before opening the tap.
    """

    def __init__(self, service: Optional[ImputationService] = None,
                 config: Optional[GatewayConfig] = None,
                 store_dir: Optional[str] = None, start: bool = True,
                 **config_overrides) -> None:
        if config is not None and config_overrides:
            raise ValidationError(
                "pass either a GatewayConfig or keyword overrides, not both")
        self.config = (config or GatewayConfig(**config_overrides)).validate()
        self.service = service or ImputationService(
            store_dir=store_dir,
            max_cached_models=self.config.max_cached_models)
        self.metrics = GatewayMetrics()
        self._queue = RequestQueue(
            max_depth=self.config.max_queue_depth,
            admission=self.config.admission,
            interactive_burst=self.config.interactive_burst,
            on_expired=lambda entry: self.metrics.record_expired())
        self._id_counter = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._state_lock = checked_lock("Gateway._state_lock")
        self._inflight = 0
        self._model_locks: Dict[str, threading.Lock] = {}
        self._started = False
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------- #
    def start(self) -> "Gateway":
        """Launch the worker pool (idempotent)."""
        with self._state_lock:
            if self._started:
                return self
            if self._queue.closed:
                raise ServiceError("gateway is closed; build a new one")
            self._stop.clear()
            self._threads = [
                threading.Thread(target=self._worker_loop,
                                 name=f"gateway-worker-{index}", daemon=True)
                for index in range(self.config.workers)]
            for thread in self._threads:
                thread.start()
            self._started = True
        return self

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut the gateway down.

        ``drain=True`` (default) stops admissions, serves everything
        already queued (up to ``timeout`` seconds), then joins the
        workers.  ``drain=False`` abandons the queue: every unserved
        request's future fails with :class:`ServiceError`.  Idempotent.
        """
        self._queue.close()
        if drain and self._started:
            deadline = time.monotonic() + timeout
            stable = 0
            while time.monotonic() < deadline:
                if self._queue.depth() or self._queue.assembling() \
                        or self._inflight_count():
                    stable = 0
                    time.sleep(0.005)
                    continue
                # Require two consecutive idle observations: an entry can
                # momentarily be in none of the three counters while it
                # hops from batch assembly to the worker's in-flight set.
                stable += 1
                if stable >= 2:
                    break
                time.sleep(0.005)
        self._stop.set()
        self._queue.wake_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._started = False
        abandoned = [entry for entry in self._queue.drain()
                     if not entry.future.done()]
        if abandoned:
            # _fail_all keeps the telemetry honest: these requests failed,
            # they are not forever "in flight".
            self._fail_all(abandoned, ServiceError(
                "gateway closed before the request was served"))

    def __enter__(self) -> "Gateway":
        # Deliberately does not force-start: ``Gateway(..., start=False)``
        # may be used as a context manager to stage load before opening
        # the tap with an explicit start().
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- producers ------------------------------------------------------- #
    def submit(self, request=None, model_id=None,
               priority: str = "interactive",
               deadline_ms: Optional[float] = None,
               timeout: Optional[float] = None) -> GatewayFuture:
        """Admit one request; returns the future its result arrives on.

        Accepts the same shapes as :meth:`ImputationService.impute`: an
        :class:`~repro.api.requests.ImputeRequest`, or a tensor/array plus
        ``model_id=...`` (a :class:`~repro.api.refs.ModelRef` or a legacy
        string).  ``priority`` picks the lane (``"interactive"``
        or ``"batch"``); ``deadline_ms`` bounds how long the request may
        wait in the queue (falling back to the config default); under the
        ``"block"`` admission policy ``timeout`` bounds how long this call
        may wait for queue space.

        Raises :class:`~repro.exceptions.QueueFullError` when admission is
        denied and :class:`~repro.exceptions.ServiceError` for unknown
        models — both *here*, at the front door, never later on the future.
        """
        if priority not in LANES:
            raise ValidationError(
                f"unknown priority {priority!r}; lanes: " + ", ".join(LANES))
        request = coerce_impute_request(request, model_id)
        # Resolve a ModelRef (or "m@2" string) to its concrete store id at
        # the front door: batching groups, model locks and the fast lane
        # all key on concrete ids, and ``@latest`` must pin to whatever
        # the lineage serves *now*, not at some later dispatch time.
        resolver = getattr(self.service, "resolve_ref", None)
        if callable(resolver):
            concrete = resolver(request.model_ref)
            if request.model_id != concrete:
                request = dataclasses.replace(request, model_id=concrete)
        if request.model_id not in self.service.store:
            raise ServiceError(
                f"unknown model id {request.model_id!r}; fit() it on the "
                "gateway's service first")
        caller_id = (str(request.request_id)
                     if request.request_id is not None else None)
        internal_id = f"g-{next(self._id_counter):08d}"
        now = time.perf_counter()
        # Tracing front door: requests that already carry a context (an
        # upstream tier stamped one) keep it; otherwise mint a sampled root.
        # Disabled tracing costs exactly this one enabled() check.
        ctx = request.trace
        if ctx is None and obs_trace.enabled():
            ctx = obs_trace.start_trace(self.config.trace_sample_rate)
        request = dataclasses.replace(request, request_id=internal_id,
                                      enqueued_at=now, trace=ctx)
        deadline_ms = (self.config.default_deadline_ms
                       if deadline_ms is None else deadline_ms)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be > 0 or None, got {deadline_ms}")
        entry = QueuedRequest(
            request=request,
            future=GatewayFuture(caller_id or internal_id, priority),
            lane=priority,
            deadline=None if deadline_ms is None
            else now + deadline_ms / 1000.0,
            group=self._group_key(request),
            caller_id=caller_id,
            admitted_at=now,
        )
        if ctx is not None:
            # The trace root: everything downstream parents onto this span.
            # Buffered on the entry (before put() hands it to a worker)
            # and flushed with the batch's spans, so admission itself
            # never blocks on span IO.
            entry.root_span = obs_trace.span_record(
                "gateway.submit", ctx, now, time.perf_counter(),
                {"lane": priority, "request_id": caller_id or internal_id,
                 "model_id": str(request.model_id)})
        try:
            self._queue.put(entry, timeout=timeout)
        except QueueFullError:
            self.metrics.record_rejected()
            raise
        self.metrics.record_submit(priority)
        return entry.future

    def submit_many(self, requests: Sequence, model_id: Optional[str] = None,
                    priority: str = "interactive",
                    deadline_ms: Optional[float] = None,
                    timeout: Optional[float] = None) -> List[GatewayFuture]:
        """Admit several requests; futures come back in submit order."""
        return [self.submit(request, model_id=model_id, priority=priority,
                            deadline_ms=deadline_ms, timeout=timeout)
                for request in requests]

    def impute(self, request=None, model_id: Optional[str] = None,
               priority: str = "interactive",
               deadline_ms: Optional[float] = None,
               timeout: Optional[float] = None) -> ImputeResult:
        """Synchronous convenience: :meth:`submit` + wait for the result."""
        return self.submit(request, model_id=model_id, priority=priority,
                           deadline_ms=deadline_ms).result(timeout)

    # -- introspection --------------------------------------------------- #
    @property
    def running(self) -> bool:
        """Whether the worker pool is serving (futures can resolve)."""
        return self._started

    def stats(self) -> MetricsSnapshot:
        """Serving telemetry snapshot (see :mod:`repro.gateway.metrics`).

        Returns a typed :class:`~repro.api.telemetry.MetricsSnapshot` that
        still behaves exactly like the historical dict (same keys, full
        Mapping protocol).  Includes ``fast_path_hit_rate`` (fraction of
        completions served
        entirely from lookup tables) and per-model ``fast_path`` table
        provenance: build seconds, size, staleness age.  When the wrapped
        service is a cluster router (anything exposing ``shard_stats()``),
        the snapshot also carries per-shard rollups under ``"shards"``.
        """
        shard_probe = getattr(self.service, "shard_stats", None)
        return self.metrics.snapshot(
            queue_depth=self._queue.depth(),
            lane_depths=self._queue.lane_depths(),
            model_cache=self.service.store.cache_stats(),
            fast_path=self.service.store.fast_path_stats(),
            shards=shard_probe() if callable(shard_probe) else None)

    def describe(self) -> Dict[str, object]:
        """Config + live stats + wrapped-service snapshot, for logs."""
        return {
            "config": dataclasses.asdict(self.config),
            "running": self.running,
            "stats": self.stats(),
            "service": self.service.describe(),
        }

    # -- internals ------------------------------------------------------- #
    def _group_key(self, request: ImputeRequest):
        """Fusion group: same model + same tensor structure may batch.

        ``None`` data (impute-the-fitted-tensor) is its own group per
        model.  Grouping by value shape is deliberately conservative —
        same-shaped tensors always share a batch structure, so a fused
        ``impute_many`` serves the whole batch in shared forward calls.
        """
        if request.data is None:
            return (request.model_id, None)
        return (request.model_id, tuple(request.data.values.shape))

    def _inflight_count(self) -> int:
        with self._state_lock:
            return self._inflight

    def _model_lock(self, model_id: str) -> threading.Lock:
        # All per-model locks share one lockcheck node ("Gateway._model_lock")
        # on purpose: the ordering invariant is role-based — a worker may
        # hold at most one model lock, acquired after releasing the state
        # lock — and any two-model chain is an inversion worth failing on.
        with self._state_lock:
            lock = self._model_locks.get(model_id)
            if lock is None:
                lock = self._model_locks[model_id] = \
                    checked_lock("Gateway._model_lock")
            return lock

    def _worker_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1000.0
        while True:
            batch = self._queue.next_batch(self.config.max_batch_size,
                                           max_wait, timeout=0.05)
            if not batch:
                if self._stop.is_set():
                    return
                continue
            with self._state_lock:
                self._inflight += len(batch)
            try:
                self._serve_batch(batch)
            except Exception:
                # A bug in the serving path must not strand the batch's
                # futures (callers would block forever) or kill the worker.
                import traceback

                self._fail_all(
                    [entry for entry in batch if not entry.future.done()],
                    ServiceError("gateway worker failed serving the "
                                 f"batch:\n{traceback.format_exc()}"))
            finally:
                with self._state_lock:
                    self._inflight -= len(batch)

    def _serve_batch(self, entries: List[QueuedRequest]) -> None:
        # Deadlines are re-checked at the compute boundary: a request can
        # expire *during* batch assembly (it waited out max_wait_ms), and
        # serving it anyway would burn compute nobody is waiting for.
        live: List[QueuedRequest] = []
        for entry in entries:
            if entry.expired():
                waited = time.perf_counter() - entry.admitted_at
                entry.fail(DeadlineExceededError(
                    f"request {entry.future.request_id!r} expired after "
                    f"{waited * 1e3:.1f} ms, before compute started"))
                self.metrics.record_expired()
                if entry.root_span is not None:
                    # the trace still shows the request entered and died
                    obs_trace.write_records([entry.root_span])
            else:
                live.append(entry)
        if not live:
            return
        self.metrics.record_batch(len(live))
        model_id = live[0].request.model_id
        # Tracing: close each traced request's queue-wait span and re-stamp
        # it with a per-batch child context, so the serving spans written
        # downstream (fast lane, fused forward, shard RPC) parent onto the
        # batch rather than onto the root.
        dispatched = time.perf_counter()
        traced: List[QueuedRequest] = []
        batch_spans: List[dict] = []
        if obs_trace.enabled():
            for entry in live:
                ctx = entry.request.trace
                if ctx is None:
                    continue
                if entry.root_span is not None:
                    batch_spans.append(entry.root_span)
                    entry.root_span = None
                batch_spans.append(obs_trace.span_record(
                    "gateway.queue", ctx.child(), entry.admitted_at,
                    dispatched, {"lane": entry.lane}))
                entry.request = dataclasses.replace(entry.request,
                                                    trace=ctx.child())
                traced.append(entry)
        # No-lock fast lane: when every request in the batch is fully
        # answerable from the model's precomputed lookup tables, serve it
        # with pure reads — no model lock, no forward pass.  All-or-
        # nothing per batch; any miss falls through to the locked path.
        if self.config.use_fast_path and self._try_fast_lane(model_id, live):
            self._close_batch_spans(traced, batch_spans, dispatched,
                                    len(live), fast_lane=True)
            return
        # One batch per model at a time: the fitted imputers (live network
        # objects) are not guaranteed re-entrant, and on one interpreter
        # the throughput lever is fusion, not intra-model thread overlap.
        # Distinct models still serve concurrently across workers.
        try:
            with self._model_lock(model_id):
                try:
                    imputer = self.service.store.get(model_id)
                except Exception as error:
                    self._fail_all(live, ServiceError(
                        f"model {model_id!r} could not be obtained: {error}"))
                    return
                serving = ServingBatch(
                    model_id=model_id,
                    method=self.service.store.method_for(model_id),
                    requests=[entry.request for entry in live],
                    imputer=imputer)
                job = execute_serving_batch(serving)
        finally:
            self._close_batch_spans(traced, batch_spans, dispatched,
                                    len(live), fast_lane=False)
        if not job.ok:
            self._fail_all(live, ServiceError(
                f"serving batch for model {model_id!r} failed:\n{job.error}"))
            return
        results = {result.request_id: result
                   for result in job.result["results"]}
        errors = {failure["request_id"]: failure["error"]
                  for failure in job.result["failures"]}
        for entry in live:
            internal_id = str(entry.request.request_id)
            result = results.get(internal_id)
            if result is not None:
                if entry.caller_id is not None:
                    result = dataclasses.replace(result,
                                                 request_id=entry.caller_id)
                entry.complete(result)
                self.metrics.record_completion(result.latency_seconds,
                                               fused=result.fused,
                                               fast_path=result.fast_path)
            else:
                entry.fail(ServiceError(
                    errors.get(internal_id,
                               f"request {internal_id!r} produced no "
                               "result")))
                self.metrics.record_failed()

    def _close_batch_spans(self, traced: List[QueuedRequest],
                           batch_spans: List[dict], dispatched: float,
                           batch_size: int, fast_lane: bool) -> None:
        """Flush the batch's buffered spans plus a ``gateway.batch`` each.

        The batch span's context is the one re-stamped on the request at
        dispatch, so the serving spans written while the batch ran are its
        children.  All of the batch's spans — the queue spans buffered at
        dispatch and the batch spans closed here — land in one write.
        """
        end = time.perf_counter()
        for entry in traced:
            ctx = entry.request.trace
            if ctx is not None:
                batch_spans.append(obs_trace.span_record(
                    "gateway.batch", ctx, dispatched, end,
                    {"batch_size": batch_size, "lane": entry.lane,
                     "fast_lane": fast_lane}))
        obs_trace.write_records(batch_spans)

    def _try_fast_lane(self, model_id: str,
                       live: List[QueuedRequest]) -> bool:
        """Serve the whole batch from lookup tables; False on any miss.

        Reads the model with :meth:`ModelStore.peek` (warm memory only —
        a cold model should pay its disk load under the model lock, once)
        and the imputer's read-only ``try_fast_path``, so this path takes
        no lock and can run concurrently with a locked full forward on
        the same model.
        """
        imputer = self.service.store.peek(model_id)
        probe = getattr(imputer, "try_fast_path", None)
        if not callable(probe):
            return False
        first_trace = next((entry.request.trace for entry in live
                            if entry.request.trace is not None), None)
        start = time.perf_counter()
        try:
            with obs_trace.activate(first_trace):
                completed = probe([entry.request.data for entry in live])
        except Exception:
            # The fast lane is opportunistic: any failure (a structurally
            # odd tensor, a mid-refresh model) falls back to the locked
            # path, which owns real error reporting — but a silently
            # failing fast lane would look like a fusion-rate regression,
            # so count it (``fast_lane_fallbacks`` in stats() extras) and
            # leave a debug trace behind.
            self.metrics.record_fast_lane_fallback()
            logger.debug("fast lane miss for model %s; falling back to "
                         "locked batch path", model_id, exc_info=True)
            self._write_fast_lane_spans(live, start, hit=False)
            return False
        if completed is None:
            self._write_fast_lane_spans(live, start, hit=False)
            return False
        end = time.perf_counter()
        self._write_fast_lane_spans(live, start, hit=True)
        share = (end - start) / len(live)
        method = self.service.store.method_for(model_id) or \
            getattr(imputer, "name", type(imputer).__name__)
        for entry, tensor in zip(live, completed):
            request = entry.request
            result = ImputeResult(
                request_id=entry.caller_id or str(request.request_id),
                model_id=model_id,
                method=method,
                completed=tensor,
                runtime_seconds=share,
                latency_seconds=_latency(request, end, share),
                from_batch=True,
                fused=False,
                fast_path=True,
            )
            entry.complete(result)
            self.metrics.record_completion(result.latency_seconds,
                                           fused=False, fast_path=True)
        return True

    def _write_fast_lane_spans(self, live: List[QueuedRequest],
                               start: float, hit: bool) -> None:
        """Record the fast-lane probe (hit or miss) on every traced entry."""
        if not obs_trace.enabled():
            return
        end = time.perf_counter()
        obs_trace.write_records([
            obs_trace.span_record("gateway.fast_lane",
                                  entry.request.trace.child(), start, end,
                                  {"hit": hit, "batch_size": len(live)})
            for entry in live if entry.request.trace is not None])

    def _fail_all(self, entries: List[QueuedRequest],
                  error: ServiceError) -> None:
        for entry in entries:
            entry.fail(error)
        self.metrics.record_failed(len(entries))
