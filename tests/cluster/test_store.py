"""Tests of the durable shard store: models, journal, analytics."""

import io
import json
import sqlite3
import zipfile

import numpy as np
import pytest

from repro.baselines.simple import MeanImputer
from repro.cluster.store import (DurableStore, FUSION_REGRESSION_MARGIN,
                                 SQLiteBackend, cluster_analytics)
from repro.engine.artifacts import (ARRAYS_FILENAME, MANIFEST_FILENAME,
                                    load_imputer_bytes)


@pytest.fixture
def fitted_mean(tiny_tensor):
    imputer = MeanImputer()
    imputer.fit(tiny_tensor)
    return imputer


def _result_payload(request_id, value=1.0):
    return {"request_id": request_id, "value": value}


class TestModelPersistence:
    def test_model_round_trips_through_sqlite(self, tmp_path, fitted_mean,
                                              tiny_tensor):
        store = DurableStore(tmp_path)
        store.put_model("m1", fitted_mean, method="mean")
        assert store.has_model("m1")
        assert store.list_models() == ["m1"]
        assert store.method_for("m1") == "mean"
        restored = store.load_model("m1")
        expected = fitted_mean.impute(tiny_tensor)
        np.testing.assert_array_equal(restored.impute(tiny_tensor).values,
                                      expected.values)
        store.delete_model("m1")
        assert not store.has_model("m1")
        store.close()

    def test_untrusted_blob_class_guard(self, tmp_path, fitted_mean):
        store = DurableStore(tmp_path)
        store.put_model("m1", fitted_mean, method="mean")
        blob = store.get_model_blob("m1")
        with zipfile.ZipFile(io.BytesIO(blob)) as archive:
            manifest = json.loads(archive.read(MANIFEST_FILENAME))
            arrays = archive.read(ARRAYS_FILENAME)
        # An attacker-controlled manifest pointing outside the repro
        # package must be refused, not imported.
        manifest["class"] = "os:system"
        hostile = io.BytesIO()
        with zipfile.ZipFile(hostile, "w") as archive:
            archive.writestr(MANIFEST_FILENAME, json.dumps(manifest))
            archive.writestr(ARRAYS_FILENAME, arrays)
        with pytest.raises(ValueError, match="refusing to import"):
            load_imputer_bytes(hostile.getvalue())
        store.close()

    def test_sqlite_backend_adapts_model_store_protocol(self, tmp_path,
                                                        fitted_mean):
        backend = SQLiteBackend(DurableStore(tmp_path))
        backend.save("m1", fitted_mean, method="mean")
        assert backend.exists("m1")
        assert backend.list_ids() == ["m1"]
        assert backend.method_for("m1") == "mean"
        # No filesystem path: parallel path-shipping must fall back.
        assert backend.location("m1") is None
        assert backend.load("m1") is not None
        backend.delete("m1")
        assert not backend.exists("m1")
        backend.store.close()


class TestJournal:
    def test_exactly_once_ledger(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal_request("r1", "m1", {"request_id": "r1"})
        assert store.commit_result("r1", "m1", _result_payload("r1"),
                                   latency_seconds=0.5, fused=True) is True
        assert store.commit_result("r1", "m1", _result_payload("r1", 9.0),
                                   latency_seconds=0.1) is False
        stored = store.get_result("r1")
        assert stored["value"] == 1.0  # first commit won
        assert stored["fused"] is True
        assert store.result_count() == 1
        store.close()

    def test_seq_and_results_survive_reopen(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal_request("r1", "m1", {"request_id": "r1"})
        store.commit_result("r1", "m1", _result_payload("r1"))
        seq_before = store._seq
        store.close()

        reopened = DurableStore(tmp_path)
        assert reopened._seq == seq_before
        assert reopened.get_result("r1")["value"] == 1.0
        assert reopened.truncated_records == 0
        # New writes continue the sequence, never reuse it.
        assert reopened.journal_request(
            "r2", "m1", {"request_id": "r2"}) == seq_before + 1
        reopened.close()

    def test_journal_file_heals_tables(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal_request("r1", "m1", {"request_id": "r1"})
        store.commit_result("r1", "m1", _result_payload("r1"))
        store.close()
        # Simulate the SIGKILL window where the file is ahead of SQLite:
        # wipe the tables, keep the journal file.
        con = sqlite3.connect(str(tmp_path / "store.db"))
        con.execute("DELETE FROM results")
        con.execute("DELETE FROM journal")
        con.commit()
        con.close()

        healed = DurableStore(tmp_path)
        assert healed.recovered_records > 0
        assert healed.get_result("r1")["value"] == 1.0
        healed.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal_request("r1", "m1", {"request_id": "r1"})
        store.journal_request("r2", "m1", {"request_id": "r2"})
        store.close()
        journal = tmp_path / "journal.jsonl"
        lines = journal.read_text().splitlines()
        lines[0] = lines[0][:10]  # torn *interior* line = corruption
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal record"):
            DurableStore(tmp_path)


class TestAnalytics:
    @staticmethod
    def _fill(store, model_id="m1", fused_tail=True):
        for index in range(30):
            request_id = f"{model_id}-r{index}"
            store.journal_request(request_id, model_id,
                                  {"request_id": request_id})
            fused = True if fused_tail else index < 10
            store.commit_result(request_id, model_id,
                                _result_payload(request_id),
                                latency_seconds=0.001 * (index + 1),
                                fused=fused)

    def test_window_function_report_shape(self, tmp_path):
        store = DurableStore(tmp_path)
        self._fill(store)
        report = store.analytics(bucket_seconds=3600.0)
        assert report["bucket_seconds"] == 3600.0
        # All 30 completions land in one wall-clock bucket.
        assert report["p99_over_time"] == [
            {"bucket": 0, "p99_seconds": 0.030, "completions": 30}]
        assert report["per_model_qps"] == [
            {"model_id": "m1", "bucket": 0, "qps": 30 / 3600.0}]
        (trend,) = report["fusion_trend"]
        assert trend["model_id"] == "m1"
        assert trend["lifetime_fusion_rate"] == 1.0
        assert trend["regressed"] is False
        store.close()

    def test_fusion_regression_flagged(self, tmp_path):
        store = DurableStore(tmp_path)
        # 10 fused then 20 unfused: recent window rate 0, lifetime 1/3.
        self._fill(store, fused_tail=False)
        (trend,) = store.analytics(bucket_seconds=3600.0)["fusion_trend"]
        assert trend["recent_fusion_rate"] == 0.0
        assert trend["lifetime_fusion_rate"] == pytest.approx(1 / 3)
        assert trend["lifetime_fusion_rate"] - trend["recent_fusion_rate"] \
            > FUSION_REGRESSION_MARGIN
        assert trend["regressed"] is True
        store.close()

    def test_cluster_analytics_unions_shards(self, tmp_path):
        paths = []
        for shard in ("shard-0", "shard-1"):
            store = DurableStore(tmp_path / shard)
            self._fill(store, model_id=f"model-{shard}")
            paths.append((shard, str(store.db_path)))
            store.close()
        report = cluster_analytics(paths, bucket_seconds=3600.0)
        assert report["shards"] == ["shard-0", "shard-1"]
        assert sum(row["completions"]
                   for row in report["p99_over_time"]) == 60
        assert {row["model_id"] for row in report["per_model_qps"]} == \
            {"model-shard-0", "model-shard-1"}

    def test_rejects_bad_bucket(self, tmp_path):
        store = DurableStore(tmp_path)
        with pytest.raises(ValueError):
            store.analytics(bucket_seconds=0.0)
        store.close()

    def test_cluster_analytics_needs_a_shard(self):
        with pytest.raises(ValueError):
            cluster_analytics([])
