"""Incremental imputation over stream windows.

A batch imputer is *fit once on a snapshot, impute that snapshot*; a
streaming imputer keeps serving while the data keeps arriving.  The
:class:`StreamingImputer` protocol has two verbs:

``update(window)``
    Absorb a new window into the (bounded) history and decide whether the
    underlying model is refit — every ``refit_every`` windows, never on the
    windows in between.  Returns True when a refit happened.
``impute_window(window)``
    Complete one window with the *current* model, without touching the
    history.  This is the per-window serving hot path.

:class:`WindowedStreamingImputer` implements the protocol on top of any
registry method.  It can start cold (the first window triggers the first
fit) or warm (:meth:`WindowedStreamingImputer.warm_start` loads a fitted
engine artifact, so an expensive model trained offline serves windows
immediately; ``refit_every=0`` then disables incremental refits entirely).
"""

from __future__ import annotations

import time
from typing import Optional, Protocol, runtime_checkable

from repro.baselines.base import BaseImputer
from repro.baselines.registry import ImputerRegistry, get_registry
from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ValidationError
from repro.streaming.windows import HistoryBuffer, StreamWindow

__all__ = ["StreamingImputer", "WindowedStreamingImputer", "refit_due"]


def refit_due(fitted: bool, windows_since_fit: int, refit_every: int) -> bool:
    """The streaming refit cadence, shared by every serving layer.

    An unfitted model is always due; ``refit_every == 0`` means "never
    refit once fitted" (warm-start serving); otherwise a refit is due
    every ``refit_every`` absorbed windows.
    """
    if not fitted:
        return True
    if refit_every == 0:
        return False
    return windows_since_fit >= refit_every


@runtime_checkable
class StreamingImputer(Protocol):
    """Anything that can absorb stream windows and impute them."""

    def update(self, window: StreamWindow) -> bool:
        """Absorb ``window`` into the model's history; True if a refit ran."""
        ...

    def impute_window(self,
                      window: Optional[StreamWindow] = None) -> TimeSeriesTensor:
        """Complete ``window`` (default: the most recently absorbed one)."""
        ...


class WindowedStreamingImputer:
    """Windowed incremental serving for any registry method.

    Parameters
    ----------
    method:
        Registry name of the underlying method (ignored when ``imputer``
        is given).
    refit_every:
        Refit the model on the accumulated history every K absorbed
        windows; ``0`` disables refits after the initial fit (pure
        warm-start serving).
    max_history:
        Bound (in time steps) on the history kept for refits; ``None``
        keeps everything.
    imputer:
        Optional pre-built (possibly pre-fitted) imputer to serve from; a
        fitted one serves immediately, an unfitted one is fitted on the
        first window.
    fitted:
        Override the fitted-state autodetection of a passed ``imputer``
        (autodetection checks for a ``_fitted_tensor``; methods that track
        fitted state differently can assert it explicitly).
    method_kwargs:
        Constructor overrides passed to the method factory.
    """

    def __init__(self, method: str = "interpolation", refit_every: int = 4,
                 max_history: Optional[int] = 512,
                 registry: Optional[ImputerRegistry] = None,
                 imputer: Optional[BaseImputer] = None,
                 fitted: Optional[bool] = None,
                 **method_kwargs) -> None:
        if refit_every < 0:
            raise ValidationError(
                f"refit_every must be >= 0, got {refit_every}")
        registry = registry or get_registry()
        if imputer is None:
            imputer = registry.info(method).create(**method_kwargs)
            fitted = False
        elif fitted is None:
            fitted = getattr(imputer, "_fitted_tensor", None) is not None or \
                bool(getattr(imputer, "_is_fitted", False))
        self.method = method
        self.refit_every = refit_every
        #: unfitted template cloned for every refit
        self._prototype = imputer.clone()
        self._fitted: Optional[BaseImputer] = imputer if fitted else None
        self.history = HistoryBuffer(max_history=max_history)
        self._last_window: Optional[StreamWindow] = None
        self._windows_since_fit = 0
        #: number of (re)fits performed by this imputer
        self.refits = 0
        #: wall-clock spent in (re)fits
        self.fit_seconds = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def warm_start(cls, artifact_path: str, refit_every: int = 0,
                   max_history: Optional[int] = 512,
                   method: str = "warm-start") -> "WindowedStreamingImputer":
        """Serve from a fitted engine artifact without any initial fit.

        With the default ``refit_every=0`` the artifact's model answers
        every window; a positive value re-enables incremental refits on
        the streamed history.
        """
        from repro.engine.artifacts import load_imputer

        return cls(method=method, refit_every=refit_every,
                   max_history=max_history,
                   imputer=load_imputer(artifact_path), fitted=True)

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._fitted is not None

    def needs_refit(self) -> bool:
        """True when the next :meth:`update` will trigger a (re)fit."""
        return refit_due(self._fitted is not None, self._windows_since_fit,
                         self.refit_every)

    def update(self, window: StreamWindow) -> bool:
        """Absorb ``window``; refit on the bounded history when due.

        A fitted imputer with ``refit_every=0`` (pure warm-start serving)
        skips the history copy entirely — nothing would ever read it.
        """
        if self.refit_every or self._fitted is None:
            self.history.absorb(window)
        self._last_window = window
        self._windows_since_fit += 1
        if not self.needs_refit():
            return False
        self._refit()
        return True

    def impute_window(self,
                      window: Optional[StreamWindow] = None) -> TimeSeriesTensor:
        """Complete one window with the current model (no history update)."""
        if window is None:
            window = self._last_window
        if window is None:
            raise ValidationError(
                "no window to impute: call update() first or pass one")
        if self._fitted is None:
            # Cold start straight into serving: fit on whatever we have.
            if self.history.steps == 0:
                self.history.absorb(window)
            self._refit()
        return self._fitted.impute(window.tensor)

    # ------------------------------------------------------------------ #
    def _refit(self) -> None:
        history = self.history.tensor()
        if history is None:
            raise ValidationError("cannot fit on an empty history")
        fresh = self._prototype.clone()
        start = time.perf_counter()
        fresh.fit(history)
        self.fit_seconds += time.perf_counter() - start
        self._fitted = fresh
        self.refits += 1
        self._windows_since_fit = 0

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "cold"
        return (f"WindowedStreamingImputer(method={self.method!r}, {state}, "
                f"refits={self.refits}, refit_every={self.refit_every}, "
                f"history={self.history.steps} steps)")
