"""Figure 7: ablation study of DeepMVI's modules.

The paper removes the temporal transformer, the context-window features of
its queries/keys, and the kernel-regression module, and measures MCAR MAE on
AirQ, Climate and Electricity as the fraction of incomplete series grows.
"""

import pytest

from repro.data.missing import MissingScenario

from benchmarks._harness import bench_dataset, emit, evaluate_cell

DATASETS = ("airq", "climate", "electricity")
VARIANTS = ("deepmvi", "deepmvi-no-tt", "deepmvi-no-context", "deepmvi-no-kr")
SWEEP_PERCENT = (10, 100)


def _run_dataset(dataset_name):
    truth = bench_dataset(dataset_name, seed=0)
    series = {}
    for percent in SWEEP_PERCENT:
        scenario = MissingScenario(
            "mcar", {"incomplete_fraction": percent / 100.0, "block_size": 10})
        for variant in VARIANTS:
            cell = evaluate_cell(truth, scenario, variant, seed=1)
            series.setdefault(variant, []).append((percent, cell["mae"]))
    return series


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig7_ablation(benchmark, results_dir, dataset_name):
    series = benchmark.pedantic(_run_dataset, args=(dataset_name,),
                                rounds=1, iterations=1)
    lines = [f"MCAR MAE vs % incomplete series {list(SWEEP_PERCENT)}"]
    for variant, points in series.items():
        values = "  ".join(f"{value:.3f}" for _, value in points)
        lines.append(f"  {variant:<20} {values}")
    emit(results_dir, f"figure7_{dataset_name}",
         f"Ablation study on {dataset_name}", "\n".join(lines))
    assert set(series) == set(VARIANTS)
