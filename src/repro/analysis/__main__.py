"""Command line for repro-lint: ``python -m repro.analysis <paths>``.

Exit codes: 0 = clean (grandfathered findings allowed), 1 = live
findings, 2 = usage error.  ``--update-baseline`` rewrites the baseline
to the current findings so intentionally-grandfathered debt can be
re-snapshotted after a cleanup pass.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.linter import (
    RULE_ALIASES,
    baseline_counts,
    lint_paths,
    load_baseline,
)

DEFAULT_BASELINE = "tools/repro_lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: project-invariant checks (RL001-RL009)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--baseline", default=None,
                        help="grandfathered-findings JSON (default: "
                             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: every finding is live")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file with the current "
                             "finding counts and exit 0")
    parser.add_argument("--show-grandfathered", action="store_true",
                        help="also print baseline-suppressed findings")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, alias in sorted(RULE_ALIASES.items()):
            print(f"{rule_id}  allow[{alias}]")
        return 0

    rules = None
    if args.rules:
        rules = [rule.strip().upper() for rule in args.rules.split(",")
                 if rule.strip()]
        unknown = [rule for rule in rules if rule not in RULE_ALIASES]
        if unknown:
            print(f"unknown rules: {', '.join(unknown)}", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline) if args.baseline \
        else Path(DEFAULT_BASELINE)
    baseline = {} if (args.no_baseline or args.update_baseline) \
        else load_baseline(baseline_path)

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    report = lint_paths(args.paths, baseline=baseline, rules=rules)

    if args.update_baseline:
        counts = baseline_counts(report.findings)
        payload = {
            "_comment": "Grandfathered repro-lint findings: "
                        "'path::rule' -> allowed count.  New findings "
                        "past an allowance fail the build; shrink this "
                        "file as debt is paid down "
                        "(python -m repro.analysis --update-baseline).",
            "findings": counts,
        }
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"baseline updated: {baseline_path} "
              f"({sum(counts.values())} grandfathered findings)")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        shown = list(report.findings)
        if args.show_grandfathered:
            shown += report.grandfathered
        for finding in sorted(shown,
                              key=lambda f: (f.path, f.line, f.col)):
            marker = " [grandfathered]" if finding.grandfathered else ""
            print(finding.render() + marker)
        print(f"repro-lint: {report.files_checked} files, "
              f"{len(report.findings)} findings, "
              f"{len(report.grandfathered)} grandfathered")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
