"""Table 1: dataset inventory.

Regenerates the paper's dataset summary table from the registry, reporting
both the paper's original scale and the scale used by this reproduction.
"""

from repro.data.datasets import load_dataset, table1_summary

from benchmarks._harness import emit


def _build_table():
    rows = table1_summary()
    # Touch every dataset once so the row reflects a generatable artefact.
    for row in rows:
        load_dataset(row["dataset"], size="tiny", seed=0)
    return rows


def test_table1_dataset_inventory(benchmark, results_dir):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    header = (f"{'dataset':<12} {'paper series':>12} {'paper T':>8} "
              f"{'repro series':>12} {'repro T':>8} {'repeat':>9} {'related':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<12} {row['paper_series']:>12} {row['paper_length']:>8} "
            f"{row['repro_series']:>12} {row['repro_length']:>8} "
            f"{row['repetition_within']:>9} {row['relatedness_across']:>9}")
    emit(results_dir, "table1", "Dataset inventory", "\n".join(lines))
    assert len(rows) == 10
