"""Sharded, durable, replayable serving tier.

The gateway (:mod:`repro.gateway`) multiplexes threads inside one process;
this package scales *out*:

* :mod:`repro.cluster.ring` — a consistent-hash ring mapping model ids to
  shards, with stable reassignment when shards join or leave;
* :mod:`repro.cluster.store` — a SQLite-backed durable store behind the
  LRU model cache: model artifact blobs, fast-path table metadata, and an
  append-only request journal with exactly-once replay;
* :mod:`repro.cluster.shard` — a shard worker process hosting its own
  :class:`~repro.api.service.ImputationService`, speaking a
  length-prefixed socket protocol over the existing tensor wire codec;
* :mod:`repro.cluster.router` — a :class:`ClusterRouter` fronting the
  shards with the same ``submit()/gather()`` surface as the service, plus
  SQL window-function analytics over the journal.

The two-shard hello world::

    from repro.cluster import ClusterRouter

    router = ClusterRouter(directory="cluster-store", shards=2)
    model_id = router.fit(training_tensor, method="deepmvi")
    router.submit(scenario, model_id=model_id)
    results = router.gather()
    print(router.analytics()["p99_over_time"])
    router.close()
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, RemoteModel, ShardClient
from repro.cluster.shard import ShardHandle, ShardServer, replay_pending, start_shard
from repro.cluster.store import DurableStore, SQLiteBackend, cluster_analytics

__all__ = [
    "ClusterRouter",
    "DurableStore",
    "HashRing",
    "RemoteModel",
    "SQLiteBackend",
    "ShardClient",
    "ShardHandle",
    "ShardServer",
    "cluster_analytics",
    "replay_pending",
    "start_shard",
]
