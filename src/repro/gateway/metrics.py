"""Serving telemetry for the gateway.

:class:`GatewayMetrics` is a thread-safe accumulator every gateway owns.
Producers and worker threads record events as they happen; ``snapshot()``
renders the counters into the serving dashboard numbers:

* **QPS** — completions per second over a sliding window (default 30 s),
  falling back to the lifetime rate while the gateway is younger than the
  window;
* **latency percentiles** — p50/p95/p99 over a bounded reservoir of the
  most recent end-to-end latencies (queue wait + compute);
* **fusion rate** — fraction of completed requests served by a fused
  ``impute_many`` forward call rather than a per-request ``impute``;
* **fast-path hit rate** — fraction of completed requests answered
  entirely from the precomputed lookup tables
  (:mod:`repro.core.fast_path`), i.e. without any transformer forward;
* **batch shape** — mean batch size and total batches dispatched;
* **admission outcomes** — submitted / completed / failed / rejected /
  expired counts per priority lane.

The model-cache hit rate is not accumulated here: the cache keeps its own
counters (:meth:`repro.api.model_cache.LRUModelCache.stats`) and the
gateway merges them into :meth:`Gateway.stats` snapshots.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.analysis.lockcheck import checked_lock, guarded_by
from repro.api.telemetry import MetricsSnapshot, rate

__all__ = ["GatewayMetrics", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Tiny and dependency-light on purpose — the reservoir is at most a few
    thousand floats, so sorting per snapshot is cheap.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@guarded_by("_lock", "submitted", "completed", "failed", "rejected",
            "expired", "fused_completed", "fast_path_completed", "batches",
            "batch_size_sum", "fast_lane_fallbacks", "_latencies",
            "_completion_times")
class GatewayMetrics:
    """Thread-safe counters + reservoirs behind ``Gateway.stats()``."""

    def __init__(self, latency_reservoir: int = 4096,
                 qps_window_seconds: float = 30.0) -> None:
        if latency_reservoir < 1:
            raise ValueError("latency_reservoir must be >= 1")
        if qps_window_seconds <= 0:
            raise ValueError("qps_window_seconds must be > 0")
        self.qps_window_seconds = qps_window_seconds
        self._lock = checked_lock("GatewayMetrics._lock")
        self._started_at = time.perf_counter()
        self.submitted: Dict[str, int] = {}
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.expired = 0
        self.fused_completed = 0
        self.fast_path_completed = 0
        self.batches = 0
        self.batch_size_sum = 0
        #: batches that probed the no-lock fast lane and fell back to the
        #: locked path because the probe *raised* (not a clean miss) —
        #: historically only a debug log line, so a misbehaving fast lane
        #: was invisible in stats()
        self.fast_lane_fallbacks = 0
        self._latencies: Deque[float] = deque(maxlen=latency_reservoir)
        #: completion stamps for the sliding-window QPS (bounded: stale
        #: stamps are pruned on record and on snapshot)
        self._completion_times: Deque[float] = deque()

    # -- recording ------------------------------------------------------- #
    def record_submit(self, lane: str) -> None:
        with self._lock:
            self.submitted[lane] = self.submitted.get(lane, 0) + 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_size_sum += size

    def record_fast_lane_fallback(self) -> None:
        with self._lock:
            self.fast_lane_fallbacks += 1

    def record_completion(self, latency_seconds: float,
                          fused: bool = False,
                          fast_path: bool = False) -> None:
        now = time.perf_counter()
        with self._lock:
            self.completed += 1
            if fused:
                self.fused_completed += 1
            if fast_path:
                self.fast_path_completed += 1
            self._latencies.append(float(latency_seconds))
            self._completion_times.append(now)
            self._prune_locked(now)

    # -- reporting ------------------------------------------------------- #
    def snapshot(self, queue_depth: int = 0,
                 lane_depths: Optional[Dict[str, int]] = None,
                 model_cache: Optional[Dict[str, object]] = None,
                 fast_path: Optional[Dict[str, object]] = None,
                 shards: Optional[Dict[str, Dict[str, object]]] = None,
                 ) -> MetricsSnapshot:
        """Render the current serving picture as a :class:`MetricsSnapshot`.

        The snapshot object behaves like the historical dict (full Mapping
        protocol, identical keys) while exposing typed fields to consumers
        such as the canary controller.  Rates are zero — never NaN, never a
        ZeroDivisionError — on a cold gateway (:func:`repro.api.telemetry.rate`).

        The snapshot is **consistent**: every counter and reservoir is
        copied inside one short critical section, so a concurrent soak
        reader can never observe a torn pair (e.g. ``fused_completed``
        from after a completion but ``completed`` from before it, which
        would report a fusion rate above 1.0).  The derived numbers —
        three percentile sorts, rates — are computed *outside* the lock so
        telemetry polling never stalls the recording hot path.
        """
        now = time.perf_counter()
        with self._lock:
            self._prune_locked(now)
            submitted_by_lane = dict(self.submitted)
            completed = self.completed
            failed = self.failed
            rejected = self.rejected
            expired = self.expired
            fused_completed = self.fused_completed
            fast_path_completed = self.fast_path_completed
            batches = self.batches
            batch_size_sum = self.batch_size_sum
            fast_lane_fallbacks = self.fast_lane_fallbacks
            latencies = list(self._latencies)
            window_completions = len(self._completion_times)
        uptime = max(now - self._started_at, 1e-9)
        window = min(self.qps_window_seconds, uptime)
        submitted_total = sum(submitted_by_lane.values())
        return MetricsSnapshot(
            source="gateway",
            uptime_seconds=uptime,
            submitted=submitted_total,
            submitted_by_lane=submitted_by_lane,
            completed=completed,
            failed=failed,
            rejected=rejected,
            expired=expired,
            in_flight=max(
                submitted_total - completed - failed - expired, 0),
            qps=rate(window_completions, window),
            latency_p50_seconds=percentile(latencies, 50.0),
            latency_p95_seconds=percentile(latencies, 95.0),
            latency_p99_seconds=percentile(latencies, 99.0),
            fusion_rate=rate(fused_completed, completed),
            fast_path_hit_rate=rate(fast_path_completed, completed),
            batches=batches,
            mean_batch_size=rate(batch_size_sum, batches),
            queue_depth=queue_depth,
            queue_depth_by_lane=dict(lane_depths)
            if lane_depths is not None else None,
            # Per-model table provenance (build seconds, staleness age),
            # merged in by the gateway from the model store.
            model_cache=dict(model_cache)
            if model_cache is not None else None,
            fast_path=dict(fast_path) if fast_path is not None else None,
            # Per-shard rollups (journal counts, replay summaries, cache
            # counters), merged in when the gateway fronts a cluster
            # router instead of a single in-process service.
            shards=dict(shards) if shards is not None else None,
            # Extras merge after the legacy keys, so the historical wire
            # order of the snapshot dict is untouched.
            extras={"fast_lane_fallbacks": fast_lane_fallbacks},
        )

    # -- internals ------------------------------------------------------- #
    def _prune_locked(self, now: float) -> None:
        horizon = now - self.qps_window_seconds
        while self._completion_times and self._completion_times[0] < horizon:
            self._completion_times.popleft()
