"""Tracing overhead: the observability tax on gateway serving.

The tracer's contract (``src/repro/obs/trace.py``) is pay-for-what-you-
sample: with ``REPRO_TRACE`` off every hook collapses to one boolean
check, and at the production-style 10% head-sampling rate the span cost
amortises to a few microseconds per request.  The acceptance bar this
file gates is **at most a 5% serving-cost increase at 10% sampling, and
~0 when disabled**.

A 5% bar cannot be gated on raw end-to-end throughput: identical
back-to-back gateway passes on a shared CI host vary by far more than
5% (scheduler steal, bursty neighbours), so any such gate would be
flakiness, not a floor.  Instead the bar is checked on its measured
components, each individually stable:

* **serving baseline R** — process-CPU per request of the real
  pipeline: concurrent producers through :class:`repro.gateway.Gateway`
  over the same DeepMVI serving config as the gateway-throughput
  benchmark, tracing disabled (median of several passes);
* **traced-request cost T** — CPU of everything tracing adds for one
  sampled request, measured in a tight loop over the *real* code path:
  root minting, child contexts, stage timers, span records, and
  ``O_APPEND`` writes to a real ``traces.jsonl``.  The loop writes more
  often than the serving path does (the gateway coalesces a whole
  batch's spans into one write), so T is an overestimate — conservative
  in the gate's favour;
* **disabled-hook cost** — ns per ``stage()``/``start_trace()`` call
  with tracing off, the "~0 when disabled" claim.

Gated ratios (bigger is better, floor 1.0 in
``benchmarks/baselines/obs_fast.json``, checked by
``benchmarks/check_regression.py`` in the CI bench-regression job):

* ``obs.traced_ratio`` = (0.05 x R) / (0.10 x T): how many times over
  the 10%-sampled tracing cost fits inside the 5% budget;
* ``obs.disabled_headroom`` = 1000ns / disabled-hook-ns: how many times
  under a (already generous) 1us-per-hook budget the disabled path is.

One fully-sampled end-to-end pass also runs as a sanity check that
tracing engages (spans actually land on disk) and to report the
e2e CPU ratio as context.  Results land in
``benchmarks/results/obs.{txt,json}``.
"""

import json
import pathlib
import statistics
import threading
import time

from repro.api import ImputationService
from repro.api.requests import ImputeRequest
from repro.core.config import DeepMVIConfig
from repro.data.missing import MissingScenario, apply_scenario
from repro.gateway import Gateway, GatewayConfig
from repro.obs import trace as obs_trace
from repro.obs.cli import load_spans

from benchmarks._harness import bench_dataset, emit, is_fast

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_PRODUCERS = 4
SAMPLE_RATE = 0.10   # the gated production-style sampling rate
BUDGET = 0.05        # the acceptance bar: <= 5% of serving cost
HOOK_BUDGET_NS = 1000.0

if is_fast():
    SERVING_WINDOW = 25
    REQUESTS_PER_PRODUCER = 150
    SERVING_PASSES = 3
    MICRO_ITERS = 2000
    SERVING_CONFIG = dict(max_epochs=2, samples_per_epoch=32, patience=1,
                          batch_size=8, n_filters=4, max_context_windows=8)
else:
    SERVING_WINDOW = 16
    REQUESTS_PER_PRODUCER = 250
    SERVING_PASSES = 5
    MICRO_ITERS = 5000
    SERVING_CONFIG = dict(max_epochs=3, samples_per_epoch=128, patience=2,
                          batch_size=16, n_filters=8, max_context_windows=16)

MAX_BATCH_SIZE = 32
MAX_WAIT_MS = 5.0
SCENARIO = MissingScenario("mcar", {"incomplete_fraction": 0.5,
                                    "block_size": 4})


def _traffic(incomplete, n_time):
    """Per-producer lists of window-shaped request tensors."""
    traffic = []
    for producer in range(N_PRODUCERS):
        windows = []
        for index in range(REQUESTS_PER_PRODUCER):
            offset = producer * REQUESTS_PER_PRODUCER + index
            start = (offset * 7) % (n_time - SERVING_WINDOW)
            windows.append(incomplete.slice_time(
                start, start + SERVING_WINDOW))
        traffic.append(windows)
    return traffic


def _timed_producers(producer_fn):
    """One producer thread per lane; (wall_s, process_cpu_s) from barrier."""
    barrier = threading.Barrier(N_PRODUCERS + 1)
    threads = [threading.Thread(target=producer_fn, args=(index, barrier),
                                name=f"obs-bench-producer-{index}")
               for index in range(N_PRODUCERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    return (time.perf_counter() - wall_start,
            time.process_time() - cpu_start)


def _run_pass(service, model_id, traffic, sample_rate):
    """One concurrent pass; returns (cpu_seconds_per_request, wall_rps)."""
    gateway = Gateway(service, GatewayConfig(
        max_batch_size=MAX_BATCH_SIZE, max_wait_ms=MAX_WAIT_MS,
        workers=1, max_queue_depth=4096, admission="block",
        trace_sample_rate=sample_rate))

    def producer_loop(producer_index, barrier):
        barrier.wait()
        futures = [gateway.submit(ImputeRequest(model_id=model_id,
                                                data=tensor))
                   for tensor in traffic[producer_index]]
        for future in futures:
            future.result(timeout=120.0)

    wall, cpu = _timed_producers(producer_loop)
    stats = gateway.stats()
    gateway.close()
    total = N_PRODUCERS * REQUESTS_PER_PRODUCER
    assert stats["completed"] == total and stats["failed"] == 0
    return cpu / total, total / wall


def _traced_request_cpu_us(iters):
    """CPU microseconds tracing adds to one fully-sampled request.

    Replays the span work of a request's trip through the gateway over
    a cluster-free service — root span, queue/batch records, stage
    timers — against the real file-backed write path.  Three O_APPEND
    writes per request here versus amortised fractions of a write in
    the real batched path, so the result overstates the true cost.
    """
    start = time.process_time()
    for _ in range(iters):
        ctx = obs_trace.start_trace()
        t0 = time.perf_counter()
        obs_trace.write_span("gateway.submit", ctx, t0, time.perf_counter(),
                             {"lane": "interactive", "request_id": "r-0",
                              "model_id": "deepmvi-0001"})
        batch_ctx = ctx.child()
        obs_trace.write_records([
            obs_trace.span_record("gateway.queue", ctx.child(), t0,
                                  time.perf_counter(),
                                  {"lane": "interactive"}),
            obs_trace.span_record("gateway.batch", batch_ctx, t0,
                                  time.perf_counter(),
                                  {"batch_size": 8, "lane": "interactive",
                                   "fast_lane": False}),
        ])
        with obs_trace.activate(batch_ctx):
            with obs_trace.stage("serve.context_build", batch_size=8):
                pass
            with obs_trace.stage("serve.forward", batch_size=8):
                pass
        obs_trace.write_span("serve.fused_forward", batch_ctx.child(), t0,
                             time.perf_counter(),
                             {"batch_size": 8, "fast_path": False,
                              "model_id": "deepmvi-0001"})
    return (time.process_time() - start) / iters * 1e6


def _disabled_hook_ns(iters):
    """ns per tracing hook with tracing disabled (the default state)."""
    start = time.process_time()
    for _ in range(iters):
        obs_trace.start_trace()
        with obs_trace.stage("serve.forward"):
            pass
        with obs_trace.span("serve.impute", None):
            pass
    # three hooks per iteration
    return (time.process_time() - start) / (3 * iters) * 1e9


def test_obs_overhead(results_dir, tmp_path):
    truth = bench_dataset("airq", seed=0)
    incomplete, _ = apply_scenario(truth, SCENARIO, seed=0)
    service = ImputationService()
    model_id = service.fit(incomplete, method="deepmvi",
                           config=DeepMVIConfig(**SERVING_CONFIG))
    traffic = _traffic(incomplete, truth.n_time)

    # Warm the serving path (lazy fast-path tables, per-shape context
    # templates) so first-call costs stay out of the measured passes.
    for tensor in traffic[0]:
        service.impute(tensor, model_id=model_id)

    saved = (obs_trace.enabled(), obs_trace.sample_rate(),
             obs_trace._trace_dir)
    try:
        obs_trace.configure(trace_dir=tmp_path, enabled=False)

        # -- disabled hooks: the "~0 when disabled" claim --------------- #
        disabled_ns = statistics.median(
            _disabled_hook_ns(MICRO_ITERS) for _ in range(3))

        # -- serving baseline R: the real pipeline, tracing off --------- #
        _run_pass(service, model_id, traffic, sample_rate=1.0)  # warm-up
        baseline = [_run_pass(service, model_id, traffic, sample_rate=1.0)
                    for _ in range(SERVING_PASSES)]
        serving_cpu_us = statistics.median(
            cpu for cpu, _ in baseline) * 1e6
        serving_rps = statistics.median(rps for _, rps in baseline)

        # -- traced-request cost T: the real span path, fully sampled --- #
        obs_trace.configure(enabled=True, sample_rate=1.0)
        _traced_request_cpu_us(200)  # warm-up
        traced_cpu_us = statistics.median(
            _traced_request_cpu_us(MICRO_ITERS) for _ in range(3))

        # -- e2e sanity: sampled serving engages and lands spans -------- #
        sampled_cpu, _ = _run_pass(service, model_id, traffic,
                                   sample_rate=SAMPLE_RATE)
        e2e_ratio = serving_cpu_us / max(sampled_cpu * 1e6, 1e-9)
    finally:
        obs_trace.configure(enabled=saved[0], sample_rate=saved[1],
                            trace_dir=saved[2])

    spans = load_spans([tmp_path])
    assert spans, "no spans written — tracing never engaged"
    assert any(span.get("name") == "gateway.batch" and "attrs" in span
               for span in spans), "serving pipeline wrote no batch spans"

    overhead_percent = SAMPLE_RATE * traced_cpu_us / serving_cpu_us * 100
    traced_ratio = (BUDGET * serving_cpu_us) / (SAMPLE_RATE * traced_cpu_us)
    disabled_headroom = HOOK_BUDGET_NS / max(disabled_ns, 1e-9)

    metrics = {
        "obs.serving_cpu_us_per_request": serving_cpu_us,
        "obs.serving_requests_per_sec": serving_rps,
        "obs.traced_request_cpu_us": traced_cpu_us,
        "obs.sampled_overhead_percent": overhead_percent,
        "obs.e2e_sampled_cpu_ratio": e2e_ratio,
        "obs.disabled_hook_ns": disabled_ns,
        "obs.traced_ratio": traced_ratio,
        "obs.disabled_headroom": disabled_headroom,
    }
    lines = [
        f"serving baseline      {serving_cpu_us:>8.1f} us CPU/req "
        f"({serving_rps:.0f} req/sec wall)",
        f"traced request        {traced_cpu_us:>8.1f} us CPU "
        f"-> {overhead_percent:.2f}% of serving at {SAMPLE_RATE:.0%} "
        f"sampling (budget {BUDGET:.0%}, headroom {traced_ratio:.1f}x)",
        f"disabled hook         {disabled_ns:>8.1f} ns "
        f"(budget {HOOK_BUDGET_NS:.0f} ns, "
        f"headroom {disabled_headroom:.1f}x)",
        f"e2e CPU ratio at {SAMPLE_RATE:.0%}  {e2e_ratio:>8.3f} "
        f"(context only; {len(spans)} spans written)",
    ]

    payload = {
        "benchmark": "obs_overhead",
        "fast_mode": is_fast(),
        "workload": {
            "dataset": "airq",
            "method": "deepmvi",
            "window": SERVING_WINDOW,
            "producers": N_PRODUCERS,
            "requests_per_producer": REQUESTS_PER_PRODUCER,
            "serving_passes": SERVING_PASSES,
            "micro_iters": MICRO_ITERS,
            "sample_rate": SAMPLE_RATE,
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_ms": MAX_WAIT_MS,
            "scenario": SCENARIO.describe(),
        },
        "metrics": {key: round(float(value), 4)
                    for key, value in sorted(metrics.items())},
        # Dimensionless headroom multiples gated by check_regression.py —
        # host-speed independent, like every other gated benchmark.
        "gate": ["obs.traced_ratio", "obs.disabled_headroom"],
    }
    emit(results_dir, "obs",
         "Tracing overhead: serving cost vs the 5%-at-10%-sampling budget",
         "\n".join(lines))
    (results_dir / "obs.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    if not is_fast():
        (REPO_ROOT / "BENCH_obs_overhead.json").write_text(
            json.dumps(payload, indent=2) + "\n")

    # Acceptance bars: 10%-sampled tracing costs at most 5% of serving
    # CPU (headroom >= 1), and a disabled hook stays under 1us.
    assert traced_ratio >= 1.0, (
        f"10%-sampled tracing costs {overhead_percent:.2f}% of "
        f"per-request serving CPU (bar: <= {BUDGET:.0%})")
    assert disabled_headroom >= 1.0, (
        f"disabled tracing hooks cost {disabled_ns:.0f} ns each "
        f"(bar: <= {HOOK_BUDGET_NS:.0f} ns)")
