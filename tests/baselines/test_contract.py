"""Contract tests every imputation method must satisfy.

The contract (documented on :class:`repro.baselines.base.BaseImputer`):

1. the returned tensor is complete (no missing cells),
2. observed cells keep their exact original values,
3. the output contains only finite numbers,
4. shape and dimensions are preserved,
5. the error on an easy, highly structured dataset is bounded (the method
   is doing *something* beyond returning garbage).
"""

import numpy as np
import pytest

from repro.baselines.registry import get_registry
from repro.core.config import DeepMVIConfig
from repro.data.missing import MissingScenario, apply_scenario
from repro.data.synthetic import generate_correlated_groups
from repro.evaluation.metrics import mae

FAST_METHODS = [
    "mean", "locf", "interpolation", "svdimp", "softimpute", "svt",
    "cdrec", "trmf", "stmvl", "dynammo", "tkcm",
]
DEEP_METHODS = ["brits", "mrnn", "gpvae", "transformer", "deepmvi", "deepmvi1d"]

_DEEP_KWARGS = {
    "brits": dict(n_epochs=3, hidden_dim=8, crop_length=24),
    "mrnn": dict(n_epochs=2, hidden_dim=8, crop_length=16, batch_size=2),
    "gpvae": dict(n_epochs=5, hidden_dim=8, latent_dim=4, crop_length=32),
    "transformer": dict(n_epochs=3, model_dim=8, crop_length=48, batch_size=8),
    "deepmvi": dict(config=DeepMVIConfig.fast()),
    "deepmvi1d": dict(config=DeepMVIConfig.fast(flatten_dimensions=True)),
}


@pytest.fixture(scope="module")
def imputation_task():
    panel = generate_correlated_groups(n_groups=2, series_per_group=4,
                                       length=120, seed=0, noise_std=0.1)
    panel.name = "contract"
    scenario = MissingScenario("mcar", {"incomplete_fraction": 1.0, "block_size": 6})
    incomplete, mask = apply_scenario(panel, scenario, seed=1)
    return panel, incomplete, mask


def _build(name):
    return get_registry().create(name, **_DEEP_KWARGS.get(name, {}))


@pytest.mark.parametrize("name", FAST_METHODS + DEEP_METHODS)
class TestImputerContract:
    def test_output_is_complete_and_finite(self, imputation_task, name):
        _, incomplete, _ = imputation_task
        completed = _build(name).fit_impute(incomplete)
        assert completed.missing_fraction == 0.0
        assert np.isfinite(completed.values).all()

    def test_observed_cells_untouched(self, imputation_task, name):
        _, incomplete, _ = imputation_task
        completed = _build(name).fit_impute(incomplete)
        observed = incomplete.mask == 1
        np.testing.assert_allclose(completed.values[observed],
                                   incomplete.values[observed])

    def test_shape_and_dimensions_preserved(self, imputation_task, name):
        _, incomplete, _ = imputation_task
        completed = _build(name).fit_impute(incomplete)
        assert completed.shape == incomplete.shape
        assert [d.name for d in completed.dimensions] == \
               [d.name for d in incomplete.dimensions]

    def test_error_is_bounded_on_easy_data(self, imputation_task, name):
        truth, incomplete, mask = imputation_task
        completed = _build(name).fit_impute(incomplete)
        # Data is z-normalised; predicting the mean would give MAE ~0.8.
        # Any sensible method (even under-trained deep ones) stays below 2.
        assert mae(completed, truth, mask) < 2.0


@pytest.mark.parametrize("name", FAST_METHODS)
def test_conventional_methods_are_deterministic(imputation_task, name):
    _, incomplete, _ = imputation_task
    first = _build(name).fit_impute(incomplete)
    second = _build(name).fit_impute(incomplete)
    np.testing.assert_allclose(first.values, second.values)


@pytest.mark.parametrize("name", ["cdrec", "svdimp", "stmvl", "brits"])
def test_methods_handle_multidimensional_input(small_multidim_panel, name):
    scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5, "block_size": 4})
    incomplete, mask = apply_scenario(small_multidim_panel, scenario, seed=3)
    kwargs = _DEEP_KWARGS.get(name, {})
    completed = get_registry().create(name, **kwargs).fit_impute(incomplete)
    assert completed.shape == small_multidim_panel.shape
    assert completed.missing_fraction == 0.0


class TestRegistryVariants:
    """DeepMVI variant names resolve through the registry with the right
    ablation flags and distinct display names (so result tables and the CLI
    experiments for Figures 7-9 can tell the variants apart)."""

    def test_ablation_variants_resolve(self):
        from repro.baselines.registry import DEEPMVI_VARIANTS

        expectations = {
            "deepmvi1d": ("flatten_dimensions", "DeepMVI1D"),
            "deepmvi-no-tt": ("use_temporal_transformer", "DeepMVI-NoTT"),
            "deepmvi-no-context": ("use_context_window", "DeepMVI-NoContext"),
            "deepmvi-no-kr": ("use_kernel_regression", "DeepMVI-NoKR"),
            "deepmvi-no-fg": ("use_fine_grained", "DeepMVI-NoFG"),
        }
        assert set(expectations) | {"deepmvi"} == set(DEEPMVI_VARIANTS)
        for name, (flag, display) in expectations.items():
            imputer = get_registry().create(name, config=DeepMVIConfig.fast())
            value = getattr(imputer.config, flag)
            assert value is (flag == "flatten_dimensions")
            assert imputer.name == display

    def test_variant_name_survives_clone(self):
        imputer = get_registry().create("deepmvi-no-kr", config=DeepMVIConfig.fast())
        assert imputer.clone().name == "DeepMVI-NoKR"

    def test_variants_are_listed(self):
        from repro.baselines.registry import list_methods
        assert "deepmvi-no-fg" in list_methods()
