"""Property-based tests of the TimeSeriesTensor container."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.dimensions import Dimension
from repro.data.tensor import TimeSeriesTensor

_settings = settings(max_examples=25, deadline=None)


@st.composite
def tensors_with_missing(draw):
    n_series = draw(st.integers(1, 5))
    length = draw(st.integers(5, 40))
    seed = draw(st.integers(0, 10_000))
    missing_rate = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n_series, length)) * draw(st.floats(0.5, 20.0))
    mask = (rng.random(values.shape) >= missing_rate).astype(float)
    # guarantee at least one observed cell
    mask[0, 0] = 1.0
    values = np.where(mask == 1, values, np.nan)
    return TimeSeriesTensor(values=values, mask=mask,
                            dimensions=[Dimension.categorical("s", n_series)])


@_settings
@given(tensors_with_missing())
def test_missing_plus_available_counts_cover_all_cells(tensor):
    assert (tensor.missing_indices().shape[0] + tensor.available_indices().shape[0]
            == tensor.values.size)
    assert 0.0 <= tensor.missing_fraction <= 1.0


@_settings
@given(tensors_with_missing())
def test_normalisation_roundtrip_preserves_observed_values(tensor):
    normalised, mean, std = tensor.normalised()
    restored = normalised.values * std + mean
    observed = tensor.mask == 1
    np.testing.assert_allclose(restored[observed], tensor.values[observed], atol=1e-9)
    assert std > 0


@_settings
@given(tensors_with_missing())
def test_fill_never_changes_observed_cells_and_completes(tensor):
    filled = tensor.fill(np.zeros_like(tensor.values))
    observed = tensor.mask == 1
    np.testing.assert_allclose(filled.values[observed], tensor.values[observed])
    assert filled.missing_fraction == 0.0
    np.testing.assert_allclose(filled.values[~observed], 0.0)


@_settings
@given(tensors_with_missing())
def test_matrix_roundtrip_is_lossless(tensor):
    matrix, mask = tensor.to_matrix()
    rebuilt = tensor.with_matrix(matrix)
    observed = tensor.mask == 1
    np.testing.assert_allclose(rebuilt.values[observed], tensor.values[observed])
    np.testing.assert_array_equal(rebuilt.mask, tensor.mask)


@_settings
@given(tensors_with_missing())
def test_aggregate_over_is_within_observed_range(tensor):
    aggregate = tensor.aggregate_over(axis=0)
    observed = tensor.values[tensor.mask == 1]
    finite = aggregate[np.isfinite(aggregate)]
    if finite.size and observed.size:
        assert finite.max() <= observed.max() + 1e-9
        assert finite.min() >= observed.min() - 1e-9


@_settings
@given(tensors_with_missing())
def test_with_missing_is_monotone_in_availability(tensor):
    extra = np.zeros_like(tensor.values)
    extra[0, 0] = 1.0
    hidden = tensor.with_missing(extra)
    assert hidden.mask.sum() <= tensor.mask.sum()
    assert hidden.mask[0, 0] == 0.0
