"""Tests of the command-line interface."""

import pytest

from repro.evaluation.cli import main


class TestListCommand:
    def test_lists_datasets_methods_and_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "airq" in output
        assert "deepmvi" in output
        assert "figure5" in output
        assert "blackout" in output

    def test_lists_method_kinds_tags_and_variants(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "kind" in output and "tags" in output
        assert "conventional" in output and "deep" in output
        # ablation variants appear with their display names
        assert "deepmvi-no-tt" in output
        assert "DeepMVI-NoTT" in output
        assert "variant of deepmvi" in output


class TestImputeCommand:
    def test_serves_requests_from_one_fit(self, capsys):
        code = main(["impute", "--dataset", "airq", "--scenario", "mcar",
                     "--method", "mean", "--requests", "3", "--size", "tiny"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fitted 'mean' once" in output
        assert "served 3 request(s) from 1 fit" in output
        assert output.count("req-") >= 3

    def test_writes_completed_tensors(self, tmp_path, capsys):
        target = tmp_path / "completed.npz"
        code = main(["impute", "--dataset", "airq", "--method", "interpolation",
                     "--requests", "2", "--size", "tiny",
                     "--output", str(target)])
        assert code == 0
        assert target.exists()
        import numpy as np

        with np.load(target) as payload:
            assert len(payload.files) == 2


class TestGatewayBenchCommand:
    def test_load_generates_and_reports_telemetry(self, capsys):
        code = main(["gateway-bench", "--dataset", "airq", "--method",
                     "mean", "--size", "tiny", "--producers", "4",
                     "--requests", "3", "--window", "20",
                     "--max-batch-size", "4", "--workers", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fitted 'mean' once" in output
        assert "requests delivered" in output and "12/12" in output
        assert "latency p95" in output
        assert "model-cache hit rate" in output
        assert "speedup vs one-at-a-time" in output

    def test_skip_baseline(self, capsys):
        code = main(["gateway-bench", "--dataset", "airq", "--method",
                     "interpolation", "--size", "tiny", "--producers", "2",
                     "--requests", "2", "--skip-baseline"])
        assert code == 0
        output = capsys.readouterr().out
        assert "baseline" not in output
        assert "4/4" in output


class TestRunCommand:
    def test_runs_fast_methods(self, capsys):
        code = main(["run", "--dataset", "airq", "--scenario", "mcar",
                     "--methods", "mean", "interpolation", "--size", "tiny"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Mean" in output and "LinearInterp" in output
        assert "runtimes" in output

    def test_blackout_scenario_parameters(self, capsys):
        code = main(["run", "--dataset", "airq", "--scenario", "blackout",
                     "--methods", "mean", "--size", "tiny", "--block-size", "5"])
        assert code == 0
        assert "Mean" in capsys.readouterr().out

    def test_disjoint_scenario(self, capsys):
        code = main(["run", "--dataset", "chlorine", "--scenario", "miss_disj",
                     "--methods", "svdimp", "--size", "tiny"])
        assert code == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["run", "--dataset", "nope", "--scenario", "mcar",
                  "--methods", "mean"])

    def test_rejects_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentCommand:
    def test_table1_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        output = capsys.readouterr().out
        assert "dataset" in output
        assert "bafu" in output

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestStreamCommand:
    def test_replays_a_stream_with_per_window_report(self, capsys):
        code = main(["stream", "--dataset", "airq", "--method", "mean",
                     "--scenario", "drift_outage", "--size", "tiny",
                     "--window", "24", "--streams", "2", "--refit-every", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "windows/sec" in output
        assert "mean MAE" in output
        assert "refit" in output            # per-window table header
        assert "[0,24)" in output           # per-window spans

    def test_quiet_mode_prints_summary_only(self, capsys):
        code = main(["stream", "--dataset", "airq", "--method",
                     "interpolation", "--scenario", "periodic_outage",
                     "--size", "tiny", "--window", "24", "--quiet"])
        assert code == 0
        output = capsys.readouterr().out
        assert "windows/sec" in output
        assert "[0,24)" not in output

    def test_every_new_scenario_is_replayable(self, capsys):
        for scenario in ("drift_outage", "correlated_failure",
                         "periodic_outage"):
            assert main(["stream", "--dataset", "airq", "--method", "mean",
                         "--scenario", scenario, "--size", "tiny",
                         "--window", "24", "--quiet"]) == 0
            assert scenario in capsys.readouterr().out

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["stream", "--dataset", "airq", "--scenario", "bogus"])
