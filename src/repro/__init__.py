"""repro: reproduction of DeepMVI (VLDB 2021).

Missing value imputation on multidimensional time series.  The package is
organised as:

``repro.nn``
    A small reverse-mode autograd engine with layers and optimisers used to
    implement the deep models (DeepMVI, BRITS, GP-VAE, Transformer).
``repro.data``
    The multidimensional time-series tensor container, missing-value
    scenario generators, and synthetic stand-ins for the paper's datasets.
``repro.core``
    The DeepMVI model (temporal transformer, fine-grained signal, kernel
    regression) and its self-supervised training procedure.
``repro.baselines``
    Conventional and deep-learning comparison methods.
``repro.evaluation``
    Metrics, the experiment runner, and downstream-analytics tools.
``repro.engine``
    The experiment engine: hashable grid-cell jobs, serial/process-pool
    executors, a resumable result cache, and fitted-imputer artifacts.
``repro.api``
    The public service layer: typed requests, the fit-once/serve-many
    :class:`~repro.api.ImputationService`, the ``repro.api.impute``
    one-liner, and the capability-aware method registry.
``repro.streaming``
    Windowed incremental serving for live feeds: sliding
    :class:`~repro.streaming.WindowedStream` chunks, incremental
    :class:`~repro.streaming.WindowedStreamingImputer` refits on bounded
    history, the multi-stream :class:`~repro.streaming.StreamingService`,
    and the :func:`~repro.streaming.replay` scoring harness.
``repro.gateway``
    The concurrent serving gateway: a bounded two-lane request queue with
    admission control and deadlines, an adaptive micro-batcher fusing
    same-model requests into shared forward calls, a worker pool over the
    store's LRU model cache, and serving telemetry
    (:meth:`~repro.gateway.Gateway.stats`).
``repro.cluster``
    The sharded, durable serving tier: consistent-hash routing of models
    across shard worker processes, a SQLite-backed durable store with an
    append-only request journal and exactly-once replay on restart, the
    :class:`~repro.cluster.ClusterRouter` front door (same
    ``submit()/gather()`` surface as the service), and SQL
    window-function analytics over the request logs.
``repro.online``
    Closed-loop online learning: per-stream drift detectors scoring
    self-masked probe cells, drift-triggered warm-start refits into
    versioned model lineages (``model_id@version``,
    :class:`~repro.api.ModelRef`), and a canary controller that
    shadow-scores each new version before promoting it to ``@latest``
    (or rolling it back), journalling every transition.
``repro.obs``
    End-to-end observability across the serving stack: head-sampled
    request tracing (:class:`~repro.obs.TraceContext` propagated from
    gateway admission through the cluster wire protocol into shard
    processes, spans appended to per-process ``traces.jsonl``), stage
    profiling hooks that collapse to no-ops when disabled, a metrics
    registry with a Prometheus text-format HTTP exporter, and the
    ``repro-obs`` CLI for span-tree reconstruction and per-stage
    latency breakdowns.
``repro.analysis``
    The repo's own analysis tooling: the repro-lint AST checker
    (``python -m repro.analysis``) enforcing the project invariants,
    the ``REPRO_LOCKCHECK=1`` dynamic lock-order and guarded-attribute
    detector, and the mypy type-coverage ratchet.  Deliberately not
    imported here: it is a dev/CI tool, not part of the serving
    surface.
"""

from repro.core.config import DeepMVIConfig
from repro.core.imputer import DeepMVIImputer
from repro.data.tensor import TimeSeriesTensor
from repro.data.datasets import load_dataset, list_datasets
from repro.data.missing import (
    MissingScenario,
    mcar,
    mcar_points,
    miss_disj,
    miss_over,
    blackout,
    drift_outage,
    correlated_failure,
    periodic_outage,
)
from repro.evaluation.metrics import mae, rmse
from repro.evaluation.runner import ExperimentRunner
from repro.engine import load_imputer, save_imputer
from repro import api
from repro.api import (
    FitRequest,
    ImputationService,
    ImputeRequest,
    ImputeResult,
)
from repro import streaming
from repro.streaming import StreamingService, StreamWindow, WindowedStream
from repro import gateway
from repro.gateway import Gateway, GatewayConfig
from repro import cluster
from repro.cluster import ClusterRouter
from repro import online
from repro.online import OnlineLoop
from repro import obs
from repro.obs import MetricsExporter, TraceContext

__version__ = "1.8.0"

__all__ = [
    "api",
    "cluster",
    "ClusterRouter",
    "online",
    "OnlineLoop",
    "obs",
    "MetricsExporter",
    "TraceContext",
    "gateway",
    "Gateway",
    "GatewayConfig",
    "streaming",
    "StreamingService",
    "StreamWindow",
    "WindowedStream",
    "FitRequest",
    "ImputationService",
    "ImputeRequest",
    "ImputeResult",
    "DeepMVIConfig",
    "DeepMVIImputer",
    "TimeSeriesTensor",
    "load_dataset",
    "list_datasets",
    "MissingScenario",
    "mcar",
    "mcar_points",
    "miss_disj",
    "miss_over",
    "blackout",
    "drift_outage",
    "correlated_failure",
    "periodic_outage",
    "mae",
    "rmse",
    "ExperimentRunner",
    "save_imputer",
    "load_imputer",
    "__version__",
]
