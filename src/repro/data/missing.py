"""Missing-value scenario generators (Section 5.1.2 of the paper).

Each generator produces a *missing mask*: an array shaped like the dataset's
values with 1 at cells that should be hidden from the imputation method and
0 elsewhere.  The mask only ever covers cells that are currently observed,
so applying it with :meth:`TimeSeriesTensor.with_missing` yields a
well-formed evaluation task where the hidden ground truth is known.

Scenarios
---------
``mcar``
    Missing Completely At Random: a fraction of the series are "incomplete";
    each incomplete series has ``missing_rate`` of its cells hidden in
    random blocks of a constant ``block_size``.
``mcar_points``
    The Section 5.5.3 variant of MCAR with a configurable (small) block size,
    down to isolated points.
``miss_disj``
    Disjoint blocks: series ``i`` loses the range ``[i*T/N, (i+1)*T/N)``, so
    no two series are missing the same time index.
``miss_over``
    Overlapping blocks: like MissDisj but with blocks of length ``2*T/N``
    (except the last series), so neighbouring series overlap.
``blackout``
    All series lose the same time range ``[t0, t0 + block_size)`` where
    ``t0`` defaults to 5% of the series length.

Live-failure scenarios (streaming)
----------------------------------
These model how sensors fail *while serving* rather than in a static
snapshot; the streaming layer (:mod:`repro.streaming`) replays them
window by window, but they are ordinary generators usable from
:class:`MissingScenario` and the grid runner too.

``drift_outage``
    A degrading sensor: outage windows recur along the timeline and each
    one is longer than the last (geometric growth), so late stream windows
    carry far more missing data than early ones.
``correlated_failure``
    A shared upstream fault: the same few outage events hit a random
    subset of series near-simultaneously (per-series start jitter), so the
    failures co-occur across correlated series instead of striking
    independently.
``periodic_outage``
    Duty-cycled dropouts: each affected sensor goes dark for the first
    ``duty`` fraction of every ``period`` steps (e.g. a radio that sleeps
    to save power), with a random per-series phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ScenarioError, did_you_mean


def _series_view(tensor: TimeSeriesTensor) -> np.ndarray:
    """Missing mask buffer in the flattened ``(n_series, T)`` layout."""
    return np.zeros((tensor.n_series, tensor.n_time), dtype=np.float64)


def _to_tensor_shape(tensor: TimeSeriesTensor, flat_mask: np.ndarray) -> np.ndarray:
    mask = flat_mask.reshape(tensor.values.shape)
    # Never mark already-missing cells: the scenario only hides observed data.
    return mask * tensor.mask


def _place_random_blocks(length: int, n_cells: int, block_size: int,
                         rng: np.random.Generator,
                         forbidden_margin: int = 0) -> np.ndarray:
    """Return a 0/1 vector of ``length`` with ~``n_cells`` cells covered by
    non-overlapping random blocks of ``block_size``."""
    row = np.zeros(length, dtype=np.float64)
    n_blocks = max(1, int(round(n_cells / block_size)))
    placed = 0
    attempts = 0
    max_attempts = 50 * n_blocks
    while placed < n_blocks and attempts < max_attempts:
        attempts += 1
        start = int(rng.integers(forbidden_margin,
                                 max(length - block_size - forbidden_margin, 1)))
        stop = start + block_size
        if row[start:stop].any():
            continue
        row[start:stop] = 1.0
        placed += 1
    return row


def mcar(tensor: TimeSeriesTensor, incomplete_fraction: float = 0.1,
         missing_rate: float = 0.1, block_size: int = 10,
         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MCAR scenario: random constant-size blocks in a fraction of the series."""
    if not 0 < incomplete_fraction <= 1:
        raise ScenarioError("incomplete_fraction must be in (0, 1]")
    if not 0 < missing_rate < 1:
        raise ScenarioError("missing_rate must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    if block_size >= length:
        raise ScenarioError(
            f"block_size {block_size} must be smaller than series length {length}")
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    chosen = rng.choice(n_series, size=n_incomplete, replace=False)
    per_series_cells = int(round(missing_rate * length))
    for row in chosen:
        flat[row] = _place_random_blocks(length, per_series_cells, block_size, rng)
    return _to_tensor_shape(tensor, flat)


def mcar_points(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
                missing_rate: float = 0.1, block_size: int = 1,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MCAR variant with small blocks (down to isolated points), Section 5.5.3."""
    return mcar(tensor, incomplete_fraction=incomplete_fraction,
                missing_rate=missing_rate, block_size=block_size, rng=rng)


def miss_disj(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MissDisj scenario: per-series disjoint blocks of length ``T / N``."""
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    block = max(1, length // n_series)
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    for row in range(n_incomplete):
        start = min(row * block, length - 1)
        stop = min((row + 1) * block, length)
        flat[row, start:stop] = 1.0
    return _to_tensor_shape(tensor, flat)


def miss_over(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MissOver scenario: blocks of length ``2T / N`` overlapping neighbours."""
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    block = max(1, length // n_series)
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    for row in range(n_incomplete):
        start = min(row * block, length - 1)
        if row == n_series - 1:
            stop = min(start + block, length)
        else:
            stop = min(start + 2 * block, length)
        flat[row, start:stop] = 1.0
    return _to_tensor_shape(tensor, flat)


def blackout(tensor: TimeSeriesTensor, block_size: int = 10,
             start_fraction: float = 0.05,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Blackout scenario: the same time range missing from every series."""
    length = tensor.n_time
    if block_size >= length:
        raise ScenarioError(
            f"block_size {block_size} must be smaller than series length {length}")
    start = int(round(start_fraction * length))
    start = min(start, length - block_size)
    flat = _series_view(tensor)
    flat[:, start:start + block_size] = 1.0
    return _to_tensor_shape(tensor, flat)


def _choose_series(n_series: int, incomplete_fraction: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Indices of the series a scenario affects."""
    if not 0 < incomplete_fraction <= 1:
        raise ScenarioError("incomplete_fraction must be in (0, 1]")
    n_chosen = max(1, int(round(incomplete_fraction * n_series)))
    return rng.choice(n_series, size=min(n_chosen, n_series), replace=False)


def drift_outage(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
                 initial_size: int = 2, growth: float = 1.6,
                 n_outages: int = 4,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Drift outage: recurring outages that grow over time (degrading sensor).

    ``n_outages`` outage windows are placed at evenly spaced starts along
    the timeline; outage ``k`` has length ``initial_size * growth**k``,
    capped one short of the inter-outage spacing so consecutive outages
    never merge — every affected series keeps at least one observed cell
    between (and before) outages.
    """
    rng = rng or np.random.default_rng(0)
    length = tensor.n_time
    if initial_size < 1:
        raise ScenarioError("initial_size must be >= 1")
    if growth < 1.0:
        raise ScenarioError("growth must be >= 1 (outages grow over time)")
    if n_outages < 1:
        raise ScenarioError("n_outages must be >= 1")
    spacing = length // (n_outages + 1)
    if spacing < 2:
        raise ScenarioError(
            f"series length {length} is too short for {n_outages} outages "
            f"(needs at least {2 * (n_outages + 1)} steps)")
    row = np.zeros(length, dtype=np.float64)
    for k in range(n_outages):
        size = int(round(initial_size * growth ** k))
        size = max(1, min(size, spacing - 1))
        start = (k + 1) * spacing
        row[start:start + size] = 1.0
    flat = _series_view(tensor)
    flat[_choose_series(tensor.n_series, incomplete_fraction, rng)] = row
    return _to_tensor_shape(tensor, flat)


def correlated_failure(tensor: TimeSeriesTensor,
                       incomplete_fraction: float = 0.5,
                       n_events: int = 2, block_size: int = 8,
                       jitter: int = 2,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Correlated failure: shared outage events across a subset of series.

    A random subset of series (the "correlated" group, e.g. sensors behind
    one gateway) loses the same ``n_events`` time ranges, each shifted by a
    small per-series ``jitter``.  The total per-series coverage is bounded
    below the series length, so every series keeps observed cells.
    """
    rng = rng or np.random.default_rng(0)
    length = tensor.n_time
    if block_size < 1 or n_events < 1 or jitter < 0:
        raise ScenarioError(
            "block_size and n_events must be >= 1 and jitter >= 0")
    if n_events * (block_size + 2 * jitter) >= length:
        raise ScenarioError(
            f"n_events={n_events} blocks of {block_size} (+/- {jitter} "
            f"jitter) cannot fit a series of length {length}")
    chosen = _choose_series(tensor.n_series, incomplete_fraction, rng)
    starts = rng.integers(0, length - block_size + 1, size=n_events)
    flat = _series_view(tensor)
    for series in chosen:
        for start in starts:
            offset = int(rng.integers(-jitter, jitter + 1)) if jitter else 0
            begin = int(np.clip(start + offset, 0, length - block_size))
            flat[series, begin:begin + block_size] = 1.0
    return _to_tensor_shape(tensor, flat)


def periodic_outage(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
                    period: int = 24, duty: float = 0.25,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Periodic outage: duty-cycled sensor dropouts with per-series phase.

    Each affected series is dark for the first ``round(duty * period)``
    steps of every ``period``-step cycle, starting at a random phase.  The
    dark span is capped at ``period - 1`` steps, so every full cycle keeps
    at least one observed cell.
    """
    rng = rng or np.random.default_rng(0)
    length = tensor.n_time
    if not 0 < duty < 1:
        raise ScenarioError("duty must be in (0, 1)")
    if not 2 <= period <= length:
        raise ScenarioError(
            f"period must be in [2, series length {length}], got {period}")
    dark = max(1, min(int(round(duty * period)), period - 1))
    chosen = _choose_series(tensor.n_series, incomplete_fraction, rng)
    positions = np.arange(length)
    flat = _series_view(tensor)
    for series in chosen:
        phase = int(rng.integers(0, period))
        flat[series] = ((positions - phase) % period < dark).astype(np.float64)
    return _to_tensor_shape(tensor, flat)


_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "mcar": mcar,
    "mcar_points": mcar_points,
    "miss_disj": miss_disj,
    "miss_over": miss_over,
    "blackout": blackout,
    "drift_outage": drift_outage,
    "correlated_failure": correlated_failure,
    "periodic_outage": periodic_outage,
}


@dataclass
class MissingScenario:
    """A named, parameterised missing-value scenario.

    Example
    -------
    >>> scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5})
    >>> missing_mask = scenario.generate(dataset, seed=3)
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _GENERATORS:
            # Same "did you mean" style as the method registry.
            raise ScenarioError(did_you_mean(self.name, _GENERATORS,
                                             noun="scenario"))

    def generate(self, tensor: TimeSeriesTensor, seed: int = 0) -> np.ndarray:
        """Generate the missing mask for ``tensor`` with a fixed ``seed``."""
        rng = np.random.default_rng(seed)
        return _GENERATORS[self.name](tensor, rng=rng, **self.params)

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({params})"


def apply_scenario(tensor: TimeSeriesTensor, scenario: MissingScenario,
                   seed: int = 0):
    """Apply ``scenario`` to ``tensor``.

    Returns
    -------
    (incomplete, missing_mask):
        ``incomplete`` is a copy of ``tensor`` with the scenario's cells
        hidden; ``missing_mask`` marks exactly those cells (the evaluation
        set).
    """
    missing_mask = scenario.generate(tensor, seed=seed)
    return tensor.with_missing(missing_mask), missing_mask


def list_scenarios() -> list:
    """Names of all registered scenario generators."""
    return sorted(_GENERATORS)
