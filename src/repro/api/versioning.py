"""Model version lineages: registry, journal, ``@latest`` resolution.

A *lineage* is everything a base model id ever was: version 1 is the
original fit (stored under the bare id, so legacy stores need no
migration), each refit registers version ``n`` under the concrete store
id ``"{base}.v{n}"``.  One version is *serving* (what ``@latest``
resolves to); at most one other is the *candidate* being shadow-served
by the canary controller.

Every transition — ``register``, ``shadow``, ``promote``, ``rollback`` —
is journaled exactly once, in memory and (when a journal path is given)
as one JSON line appended to disk, so the whole rollout history replays
on restart: a registry pointed at an existing journal reconstructs
lineages, serving pointers and in-flight candidates from the log alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.lockcheck import checked_rlock, guarded_by
from repro.api.refs import LATEST, ModelRef, check_model_id
from repro.engine.cache import append_record_line
from repro.exceptions import ServiceError, ValidationError

__all__ = ["VersionRegistry", "concrete_id_for"]


def concrete_id_for(base_id: str, version: int) -> str:
    """Store id for a lineage version: bare id for v1, ``base.vN`` after.

    Version 1 keeps the bare id so lineages layer over existing stores
    without rewriting artifacts; later versions stay inside the model-id
    grammar (``@`` is ref syntax and illegal in store ids).
    """
    check_model_id(base_id, "base_id")
    if version == 1:
        return base_id
    return f"{base_id}.v{version}"


@guarded_by("_lock", "_lineages", "_journal")
class VersionRegistry:
    """Tracks model lineages and journals every rollout transition.

    Thread-safe; the gateway worker pool, the streaming loop and the
    canary controller all consult it concurrently.  Models never
    registered here resolve as single-version lineages (``@latest`` and
    ``@1`` → the bare id), so untracked legacy serving is bit-identical
    to pre-versioning behaviour.
    """

    _EVENTS = ("register", "shadow", "promote", "rollback")

    def __init__(self, journal_path: Optional[Union[str, Path]] = None):
        self._lock = checked_rlock("VersionRegistry._lock")
        # base_id -> {"versions": {int: concrete_id},
        #             "serving": int, "candidate": Optional[int]}
        self._lineages: Dict[str, Dict[str, Any]] = {}
        self._journal: List[Dict[str, Any]] = []
        self._journal_path = Path(journal_path) if journal_path else None
        if self._journal_path is not None and self._journal_path.exists():
            self._replay(self._journal_path)

    # -- journal --------------------------------------------------------- #
    def _record(self, event: str, base_id: str, version: int,
                **details: Any) -> None:
        entry = {"event": event, "model_id": base_id, "version": version}
        if details:
            entry.update(details)
        self._journal.append(entry)
        if self._journal_path is not None:
            self._journal_path.parent.mkdir(parents=True, exist_ok=True)
            # One O_APPEND write per transition (RL004): concurrent
            # registries sharing a journal interleave whole records, and
            # a crash tears at most the final line (dropped on replay).
            append_record_line(self._journal_path,
                               json.dumps(entry, sort_keys=True))

    def _replay(self, path: Path) -> None:
        """Rebuild lineage state from a journal written by a prior run."""
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"corrupt version journal {path} line {lineno}: "
                    f"{exc}") from exc
            event = entry.get("event")
            if event not in self._EVENTS:
                raise ServiceError(
                    f"unknown event {event!r} in version journal {path} "
                    f"line {lineno}")
            self._apply(event, entry["model_id"], int(entry["version"]))
            self._journal.append(entry)

    def _apply(self, event: str, base_id: str, version: int) -> None:
        """State transition shared by live calls and journal replay."""
        lineage = self._lineages.setdefault(
            base_id, {"versions": {}, "serving": 1, "candidate": None,
                      "retired": set()})
        retired = lineage.setdefault("retired", set())
        if event == "register":
            lineage["versions"][version] = concrete_id_for(base_id, version)
        elif event == "shadow":
            lineage["candidate"] = version
        elif event == "promote":
            lineage["serving"] = version
            retired.discard(version)
            if lineage["candidate"] == version:
                lineage["candidate"] = None
        elif event == "rollback":
            # A rolled-back version is *retired*: its artifact may have been
            # discarded, so serving must never fall back onto it later.
            retired.add(version)
            if lineage["candidate"] == version:
                lineage["candidate"] = None
            if lineage["serving"] == version:
                # demote to the highest live registered version below this
                # one (flap support: promote → regress → rollback).
                fallback = [v for v in lineage["versions"]
                            if v < version and v not in retired]
                lineage["serving"] = max(fallback) if fallback else 1

    # -- lineage lifecycle ----------------------------------------------- #
    def track(self, base_id: str) -> None:
        """Start a lineage at version 1 = the existing bare-id model."""
        check_model_id(base_id, "base_id")
        with self._lock:
            if base_id not in self._lineages:
                self._lineages[base_id] = {
                    "versions": {1: base_id}, "serving": 1,
                    "candidate": None, "retired": set()}
                self._record("register", base_id, 1)

    def register(self, base_id: str) -> ModelRef:
        """Allocate the next version for ``base_id``; returns its pinned ref.

        The caller stores the fitted model under
        ``concrete_for(returned_ref)`` — registration only claims the
        version number and journals it.
        """
        with self._lock:
            self.track(base_id)
            lineage = self._lineages[base_id]
            version = max(lineage["versions"]) + 1
            self._apply("register", base_id, version)
            self._record("register", base_id, version)
            return ModelRef(base_id, version)

    def stage(self, ref: ModelRef) -> None:
        """Mark ``ref`` as the shadow-serving candidate for its lineage."""
        with self._lock:
            lineage = self._require(ref)
            if ref.version not in lineage["versions"]:
                raise ServiceError(
                    f"cannot shadow unregistered version {ref}")
            self._apply("shadow", ref.model_id, int(ref.version))
            self._record("shadow", ref.model_id, int(ref.version))

    def promote(self, ref: ModelRef) -> None:
        """Make ``ref`` what ``@latest`` resolves to."""
        with self._lock:
            lineage = self._require(ref)
            if ref.version not in lineage["versions"]:
                raise ServiceError(
                    f"cannot promote unregistered version {ref}")
            self._apply("promote", ref.model_id, int(ref.version))
            self._record("promote", ref.model_id, int(ref.version))

    def rollback(self, ref: ModelRef, reason: str = "") -> None:
        """Retire ``ref``: drop it as candidate, or demote it if serving."""
        with self._lock:
            self._require(ref)
            self._apply("rollback", ref.model_id, int(ref.version))
            details = {"reason": reason} if reason else {}
            self._record("rollback", ref.model_id, int(ref.version),
                         **details)

    # -- resolution ------------------------------------------------------ #
    def resolve(self, ref: ModelRef) -> str:
        """Concrete store id for ``ref``.

        Untracked lineages resolve ``@latest``/``@1`` to the bare id —
        identity for every pre-versioning model — and reject pinned
        versions above 1.
        """
        with self._lock:
            lineage = self._lineages.get(ref.model_id)
            if lineage is None:
                if ref.version in (LATEST, 1):
                    return ref.model_id
                raise ServiceError(
                    f"unknown model version {ref}: lineage "
                    f"{ref.model_id!r} is not versioned")
            version = lineage["serving"] if ref.version == LATEST \
                else ref.version
            concrete = lineage["versions"].get(version)
            if concrete is None:
                raise ServiceError(
                    f"unknown model version {ref.model_id}@{version} "
                    f"(registered: {sorted(lineage['versions'])})")
            return concrete

    def concrete_for(self, ref: ModelRef) -> str:
        """Store id a *pinned* ref maps to (no serving indirection)."""
        if ref.version == LATEST:
            raise ValidationError(
                "concrete_for requires a pinned ref, got @latest")
        return concrete_id_for(ref.model_id, int(ref.version))

    # -- introspection --------------------------------------------------- #
    def serving_version(self, base_id: str) -> int:
        with self._lock:
            lineage = self._lineages.get(base_id)
            return 1 if lineage is None else lineage["serving"]

    def candidate_version(self, base_id: str) -> Optional[int]:
        with self._lock:
            lineage = self._lineages.get(base_id)
            return None if lineage is None else lineage["candidate"]

    def versions(self, base_id: str) -> List[int]:
        with self._lock:
            lineage = self._lineages.get(base_id)
            return [1] if lineage is None else sorted(lineage["versions"])

    def is_tracked(self, base_id: str) -> bool:
        with self._lock:
            return base_id in self._lineages

    def history(self, base_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journal entries, oldest first (optionally one lineage's)."""
        with self._lock:
            if base_id is None:
                return [dict(e) for e in self._journal]
            return [dict(e) for e in self._journal
                    if e["model_id"] == base_id]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                base: {
                    "versions": sorted(lineage["versions"]),
                    "serving": lineage["serving"],
                    "candidate": lineage["candidate"],
                    "retired": sorted(lineage.get("retired", ())),
                }
                for base, lineage in sorted(self._lineages.items())
            }

    # -- helpers --------------------------------------------------------- #
    def _require(self, ref: ModelRef) -> Dict[str, Any]:
        if ref.version == LATEST:
            raise ValidationError(
                "lifecycle transitions require a pinned ref, got "
                f"{ref}")
        lineage = self._lineages.get(ref.model_id)
        if lineage is None:
            raise ServiceError(
                f"unknown lineage {ref.model_id!r}; register a version "
                "first")
        return lineage
