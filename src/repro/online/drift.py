"""Per-stream drift detection by self-masked probe scoring.

The serving layer has no ground truth for live traffic, so drift is
measured the same way the paper evaluates imputation quality offline:
hide a few cells we *do* observe, let the serving model fill them back
in, and score the reconstruction with NRMSE.  :class:`DriftDetector`
builds one such *probe* per window (deterministically — the hidden cells
are a pure function of stream id, window index and seed, so replays
score identically), keeps a rolling window of probe scores, and emits a
:class:`DriftEvent` when the rolling mean breaks the configured NRMSE
budget or degrades by a factor over the stream's own early baseline.

Probes are side traffic: the stream's real windows are served untouched,
so an undrifted stream's results stay bit-identical whether or not it is
being watched.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple, Union

import numpy as np

from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ValidationError
from repro.streaming.windows import StreamWindow

__all__ = ["DriftConfig", "DriftDetector", "DriftEvent"]


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of one stream's drift detector.

    Parameters
    ----------
    probe_fraction:
        Fraction of each window's *observed* cells (per series) that the
        probe hides for self-scoring.  Every series always keeps at least
        one observed cell, so probes never create an all-missing series.
    min_probe_cells:
        Windows whose probe would hide fewer cells than this are skipped
        (too sparse to score meaningfully — e.g. mostly-missing windows).
    rolling_windows:
        Probe scores are averaged over this many recent windows before
        being compared against the budget; a single noisy window cannot
        trigger a refit.
    nrmse_budget:
        Absolute quality SLO: a rolling mean above this emits a
        :class:`DriftEvent` with ``reason="budget"``.
    degradation_factor:
        Relative trigger: once a baseline exists, a rolling mean above
        ``degradation_factor * baseline`` emits an event with
        ``reason="degradation"`` even while still inside the absolute
        budget.
    baseline_windows:
        How many initial probe scores form the stream's healthy baseline.
    cooldown_windows:
        After an event (or a detector reset on promotion) this many
        further scores are observed without triggering, giving the refit
        and canary time to act instead of re-firing every window.
    seed:
        Probe-mask RNG seed (combined with the stream id and window
        index, so distinct streams and windows hide different cells).
    """

    probe_fraction: float = 0.2
    min_probe_cells: int = 4
    rolling_windows: int = 4
    nrmse_budget: float = 0.5
    degradation_factor: float = 3.0
    baseline_windows: int = 4
    cooldown_windows: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.probe_fraction <= 1.0:
            raise ValidationError(
                f"probe_fraction must be in (0, 1], got {self.probe_fraction}")
        for name in ("min_probe_cells", "rolling_windows", "baseline_windows"):
            if getattr(self, name) < 1:
                raise ValidationError(
                    f"{name} must be >= 1, got {getattr(self, name)}")
        if self.cooldown_windows < 0:
            raise ValidationError(
                f"cooldown_windows must be >= 0, got {self.cooldown_windows}")
        if self.nrmse_budget <= 0:
            raise ValidationError(
                f"nrmse_budget must be > 0, got {self.nrmse_budget}")
        if self.degradation_factor <= 1.0:
            raise ValidationError(
                "degradation_factor must be > 1 (a factor of 1 would "
                f"re-trigger on noise), got {self.degradation_factor}")


@dataclass(frozen=True)
class DriftEvent:
    """One budget violation: the control loop's refit trigger."""

    stream_id: str
    window_index: int
    score: float
    rolling_mean: float
    budget: float
    baseline: Optional[float]
    #: ``"budget"`` (absolute SLO broken) or ``"degradation"``
    #: (relative-to-baseline collapse)
    reason: str

    def describe(self) -> str:
        return (f"drift on {self.stream_id!r} at window {self.window_index}: "
                f"rolling NRMSE {self.rolling_mean:.4f} ({self.reason}, "
                f"budget {self.budget:.4f})")


class DriftDetector:
    """Rolling probe-score monitor for one stream.

    The loop drives it in two phases per window: :meth:`make_probe`
    produces the self-masked tensor to serve, :meth:`observe` folds the
    resulting NRMSE into the rolling state and returns a
    :class:`DriftEvent` when a trigger fires.
    """

    def __init__(self, stream_id: str,
                 config: Optional[DriftConfig] = None) -> None:
        self.stream_id = stream_id
        self.config = config or DriftConfig()
        self._scores: Deque[float] = deque(
            maxlen=self.config.rolling_windows)
        self._baseline_scores: List[float] = []
        self._cooldown = 0
        self.windows_observed = 0
        self.probes_made = 0
        self.events: List[DriftEvent] = []

    # -- probe construction --------------------------------------------- #
    def make_probe(self, window: Union[StreamWindow, TimeSeriesTensor],
                   index: Optional[int] = None,
                   ) -> Optional[Tuple[TimeSeriesTensor, np.ndarray]]:
        """Self-masked copy of ``window`` plus the mask of hidden cells.

        Hides ``probe_fraction`` of each series' observed cells (always
        leaving at least one observed per series, so no imputer is handed
        an all-missing series it never saw at fit time).  Returns ``None``
        when the window is too sparse to probe — an all-missing window,
        or one whose hideable cells fall below ``min_probe_cells``.
        """
        if isinstance(window, StreamWindow):
            tensor = window.tensor
            index = window.index if index is None else index
        else:
            tensor = window
            index = 0 if index is None else index
        rng = np.random.default_rng(
            (self.config.seed, zlib.crc32(self.stream_id.encode("utf-8")),
             int(index)))
        _, mask = tensor.to_matrix()
        hidden = np.zeros_like(mask)
        for row in range(mask.shape[0]):
            observed = np.flatnonzero(mask[row] == 1)
            if observed.size < 2:
                continue  # keep the lone observation (or skip empty rows)
            n_hide = int(round(self.config.probe_fraction * observed.size))
            n_hide = min(max(n_hide, 1), observed.size - 1)
            hidden[row, rng.choice(observed, size=n_hide, replace=False)] = 1.0
        if hidden.sum() < self.config.min_probe_cells:
            return None
        hidden = hidden.reshape(tensor.values.shape)
        self.probes_made += 1
        return tensor.with_missing(hidden), hidden

    # -- scoring --------------------------------------------------------- #
    @property
    def baseline(self) -> Optional[float]:
        """Mean of the stream's first healthy probe scores, once known."""
        if len(self._baseline_scores) < self.config.baseline_windows:
            return None
        return float(np.mean(self._baseline_scores))

    def observe(self, window_index: int,
                score: float) -> Optional[DriftEvent]:
        """Fold one probe score in; returns the event if a trigger fires.

        NaN scores (degenerate probes) are ignored.  During cooldown the
        score still updates the rolling state but cannot trigger.
        """
        if score is None or not np.isfinite(score):
            return None
        self.windows_observed += 1
        if len(self._baseline_scores) < self.config.baseline_windows:
            self._baseline_scores.append(float(score))
        self._scores.append(float(score))
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if len(self._scores) < self.config.rolling_windows:
            return None
        rolling = float(np.mean(self._scores))
        baseline = self.baseline
        reason = None
        if rolling > self.config.nrmse_budget:
            reason = "budget"
        elif baseline is not None and baseline > 0 and \
                rolling > self.config.degradation_factor * baseline:
            reason = "degradation"
        if reason is None:
            return None
        event = DriftEvent(
            stream_id=self.stream_id, window_index=window_index,
            score=float(score), rolling_mean=rolling,
            budget=self.config.nrmse_budget, baseline=baseline,
            reason=reason)
        self.events.append(event)
        self._cooldown = self.config.cooldown_windows
        self._scores.clear()
        return event

    def reset(self) -> None:
        """Re-arm after a model change (promotion or rollback).

        Clears the rolling scores — they measured the previous model —
        and starts a cooldown so the new model gets a grace period; the
        healthy baseline is kept, it describes the stream, not the model.
        """
        self._scores.clear()
        self._cooldown = self.config.cooldown_windows
