"""Tests of job specs, deterministic cache keys, and job execution."""

import os
import subprocess
import sys

import pytest

from repro.baselines.base import BaseImputer
from repro.data.missing import MissingScenario
from repro.engine.jobs import (
    DatasetSpec,
    ExperimentResult,
    JobResult,
    JobSpec,
    MethodSpec,
    compile_grid,
    execute_job,
)


def _named_spec(seed=0, block_size=5, method_kwargs=None):
    return JobSpec(
        dataset=DatasetSpec.named("airq", size="tiny", seed=7, length=120,
                                  shape=(8,)),
        scenario=MissingScenario("mcar", {"incomplete_fraction": 0.5,
                                          "block_size": block_size}),
        method=MethodSpec(name="svdimp", kwargs=method_kwargs or {"rank": 2}),
        seed=seed,
    )


class BombImputer(BaseImputer):
    name = "Bomb"

    def fit_impute(self, tensor):
        raise RuntimeError("boom")


class TestCacheKeys:
    def test_key_is_deterministic_within_process(self):
        assert _named_spec().key() == _named_spec().key()

    def test_key_stable_across_processes(self):
        """The key must not depend on PYTHONHASHSEED or interpreter state."""
        code = (
            "from repro.data.missing import MissingScenario\n"
            "from repro.engine.jobs import DatasetSpec, JobSpec, MethodSpec\n"
            "spec = JobSpec(\n"
            "    dataset=DatasetSpec.named('airq', size='tiny', seed=7,\n"
            "                              length=120, shape=(8,)),\n"
            "    scenario=MissingScenario('mcar', {'incomplete_fraction': 0.5,\n"
            "                                      'block_size': 5}),\n"
            "    method=MethodSpec(name='svdimp', kwargs={'rank': 2}),\n"
            "    seed=0)\n"
            "print(spec.key())\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        for _ in range(2):
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True, check=True)
            assert out.stdout.strip() == _named_spec().key()
            env["PYTHONHASHSEED"] = "999"

    def test_key_changes_with_every_input(self):
        base = _named_spec().key()
        assert _named_spec(seed=1).key() != base
        assert _named_spec(block_size=7).key() != base
        assert _named_spec(method_kwargs={"rank": 3}).key() != base

    def test_inline_tensor_keys_track_content(self, small_panel):
        by_content = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                             scenario=MissingScenario("miss_disj"),
                             method=MethodSpec(name="mean"))
        twin = JobSpec(dataset=DatasetSpec.from_tensor(small_panel.copy()),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(name="mean"))
        assert by_content.key() == twin.key()

        perturbed = small_panel.copy()
        perturbed.values[0, 0] += 1.0
        other = JobSpec(dataset=DatasetSpec.from_tensor(perturbed),
                        scenario=MissingScenario("miss_disj"),
                        method=MethodSpec(name="mean"))
        assert other.key() != by_content.key()

    def test_instance_methods_fingerprint_by_state(self):
        from repro.baselines.svd import SVDImputer
        a = MethodSpec(imputer=SVDImputer(rank=2)).fingerprint()
        b = MethodSpec(imputer=SVDImputer(rank=2)).fingerprint()
        c = MethodSpec(imputer=SVDImputer(rank=3)).fingerprint()
        assert a == b
        assert a != c


class TestExecuteJob:
    def test_runs_cell_and_reports_metrics(self, small_panel):
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(name="mean"))
        job_result = execute_job(spec)
        assert job_result.ok
        result = job_result.result
        assert result.dataset == small_panel.name
        assert result.method == "Mean"
        assert result.mae > 0 and result.rmse >= result.mae
        assert result.missing_cells > 0

    def test_captures_errors_instead_of_raising(self, small_panel):
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(imputer=BombImputer()))
        job_result = execute_job(spec)
        assert not job_result.ok
        assert job_result.result is None
        assert "boom" in job_result.error

    def test_capture_errors_false_propagates(self, small_panel):
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(imputer=BombImputer()))
        with pytest.raises(RuntimeError, match="boom"):
            execute_job(spec, capture_errors=False)

    def test_label_overrides_method_name(self, small_panel):
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(name="mean", label="mean-variant"))
        assert execute_job(spec).result.method == "mean-variant"

    def test_saves_artifact_when_requested(self, small_panel, tmp_path):
        from repro.engine.artifacts import load_imputer
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(name="mean"),
                       artifact_path=str(tmp_path / "mean-artifact"))
        assert execute_job(spec).ok
        restored = load_imputer(tmp_path / "mean-artifact")
        assert restored.impute().mask.all()


class TestRecords:
    def test_job_result_record_round_trip(self):
        result = ExperimentResult("d", "s", "m", 0.1, 0.2, 1.5, 7,
                                  params={"block_size": 5})
        job_result = JobResult(key="k", result=result)
        restored = JobResult.from_record(job_result.to_record(), from_cache=True)
        assert restored.from_cache and restored.ok
        assert restored.result == result

    def test_compile_grid_covers_product(self, small_panel):
        jobs = compile_grid([small_panel],
                            [MissingScenario("miss_disj"),
                             MissingScenario("blackout", {"block_size": 5})],
                            ["mean", "interpolation"], seed=3)
        assert len(jobs) == 4
        assert len({job.key() for job in jobs}) == 4
        assert all(job.seed == 3 for job in jobs)


class TestFingerprintStability:
    """Regression tests: fingerprints must be identity-free so cache keys
    survive interpreter restarts."""

    def _fitted_prototype(self, small_panel, seed=0):
        from repro.baselines.brits import BRITSImputer
        imputer = BRITSImputer(hidden_dim=4, crop_length=8, n_epochs=1,
                               seed=seed)
        imputer.fit(small_panel)
        return imputer

    def test_fitted_network_fingerprints_by_parameters(self, small_panel):
        a = MethodSpec(imputer=self._fitted_prototype(small_panel)).fingerprint()
        b = MethodSpec(imputer=self._fitted_prototype(small_panel)).fingerprint()
        assert a == b  # two live objects, same training -> same fingerprint

    def test_no_memory_addresses_leak_into_fingerprints(self, small_panel):
        import json
        import re
        fingerprint = MethodSpec(
            imputer=self._fitted_prototype(small_panel)).fingerprint()
        assert not re.search(r"0x[0-9a-fA-F]{4,}", json.dumps(fingerprint))


class TestArtifactVsCache:
    def test_needs_execution_until_artifact_exists(self, small_panel, tmp_path):
        spec = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                       scenario=MissingScenario("miss_disj"),
                       method=MethodSpec(name="mean"),
                       artifact_path=str(tmp_path / "art"))
        assert spec.needs_execution()
        execute_job(spec)
        assert not spec.needs_execution()
        twin = JobSpec(dataset=spec.dataset, scenario=spec.scenario,
                       method=spec.method)
        assert not twin.needs_execution()

    def test_artifact_path_does_not_change_key(self, small_panel, tmp_path):
        plain = JobSpec(dataset=DatasetSpec.from_tensor(small_panel),
                        scenario=MissingScenario("miss_disj"),
                        method=MethodSpec(name="mean"))
        with_artifact = JobSpec(dataset=plain.dataset, scenario=plain.scenario,
                                method=plain.method,
                                artifact_path=str(tmp_path / "art"))
        assert plain.key() == with_artifact.key()
