"""JSONL-backed result store keyed by job hash.

The cache makes sweeps resumable: every completed cell is appended to
``results.jsonl`` under its deterministic :meth:`JobSpec.key`, and an
executor consults the cache before running a job — matching cells are
served from disk and never re-executed.  Failed jobs are *not* cached, so a
re-run retries exactly the cells that are still missing.

The file is append-only and each line is self-contained, so a sweep killed
mid-write loses at most its final (truncated) line, which is skipped on the
next load.

Concurrent writers are safe: several processes may share one ``cache_dir``
(e.g. parallel sweeps resuming the same grid from different shells).  Every
append is a **single** ``write()`` on an ``O_APPEND`` descriptor — POSIX
guarantees the bytes of such a write land contiguously, so lines from
different processes can interleave *between* records but never *inside*
one — and the write additionally holds an advisory file lock
(``results.jsonl.lock``) so even platforms with weaker append atomicity
(network filesystems, Windows) serialise correctly.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.jobs import JobResult

RESULTS_FILENAME = "results.jsonl"
LOCK_FILENAME = RESULTS_FILENAME + ".lock"

try:
    import fcntl
except ImportError:                                       # pragma: no cover
    fcntl = None                                          # non-POSIX hosts


@contextlib.contextmanager
def _advisory_lock(lock_path: Path):
    """Hold an exclusive advisory lock on ``lock_path`` for the block.

    A separate sidecar file is locked (never the data file itself) so the
    lock's lifetime cannot interfere with readers streaming the JSONL.  On
    platforms without ``fcntl`` the lock degrades to a no-op and the
    ``O_APPEND`` single-write discipline remains the only (still line-safe
    on local filesystems) guard.
    """
    if fcntl is None:                                     # pragma: no cover
        yield
        return
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        # Closing the descriptor releases the flock.
        os.close(fd)


def append_record_line(path: Union[str, os.PathLike], line: str) -> None:
    """Append one complete text line with a single ``O_APPEND`` write.

    The journal-write discipline (repro-lint RL004) as a reusable helper:
    the encoded line lands via ``os.write`` on an ``O_APPEND`` descriptor,
    so concurrent writers interleave between records, never inside one,
    and a SIGKILL can tear at most the final line.  ``line`` should not
    contain a newline; one is appended.
    """
    encoded = (line + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        view = memoryview(encoded)
        while view:
            view = view[os.write(fd, view):]
    finally:
        os.close(fd)


class ResultCache:
    """Persistent map ``job key -> JobResult`` stored as JSON lines."""

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / RESULTS_FILENAME
        self.lock_path = self.directory / LOCK_FILENAME
        self._records: Dict[str, JobResult] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail line from an interrupted run
                result = JobResult.from_record(record, from_cache=True)
                if result.ok:
                    self._records[result.key] = result

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[JobResult]:
        """Cached result for ``key``, or ``None``."""
        return self._records.get(key)

    def put(self, job_result: JobResult) -> None:
        """Persist a successful result; errors and duplicates are ignored.

        The record is serialised first and appended as one ``write()`` of a
        complete line on an ``O_APPEND`` descriptor, under the advisory
        lock, so concurrent writers sharing this ``cache_dir`` can never
        corrupt each other's lines.
        """
        if not job_result.ok or job_result.key in self._records:
            return
        # os.write may report a short write (signal interruption, giant
        # records); append_record_line finishes the line — under the lock
        # this is still torn-proof — so a half-record can never glue
        # itself to the next writer's line.
        with _advisory_lock(self.lock_path):
            append_record_line(self.path, json.dumps(job_result.to_record()))
        self._records[job_result.key] = JobResult(
            key=job_result.key, result=job_result.result, from_cache=True)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)
