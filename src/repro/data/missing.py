"""Missing-value scenario generators (Section 5.1.2 of the paper).

Each generator produces a *missing mask*: an array shaped like the dataset's
values with 1 at cells that should be hidden from the imputation method and
0 elsewhere.  The mask only ever covers cells that are currently observed,
so applying it with :meth:`TimeSeriesTensor.with_missing` yields a
well-formed evaluation task where the hidden ground truth is known.

Scenarios
---------
``mcar``
    Missing Completely At Random: a fraction of the series are "incomplete";
    each incomplete series has ``missing_rate`` of its cells hidden in
    random blocks of a constant ``block_size``.
``mcar_points``
    The Section 5.5.3 variant of MCAR with a configurable (small) block size,
    down to isolated points.
``miss_disj``
    Disjoint blocks: series ``i`` loses the range ``[i*T/N, (i+1)*T/N)``, so
    no two series are missing the same time index.
``miss_over``
    Overlapping blocks: like MissDisj but with blocks of length ``2*T/N``
    (except the last series), so neighbouring series overlap.
``blackout``
    All series lose the same time range ``[t0, t0 + block_size)`` where
    ``t0`` defaults to 5% of the series length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.data.tensor import TimeSeriesTensor
from repro.exceptions import ScenarioError


def _series_view(tensor: TimeSeriesTensor) -> np.ndarray:
    """Missing mask buffer in the flattened ``(n_series, T)`` layout."""
    return np.zeros((tensor.n_series, tensor.n_time), dtype=np.float64)


def _to_tensor_shape(tensor: TimeSeriesTensor, flat_mask: np.ndarray) -> np.ndarray:
    mask = flat_mask.reshape(tensor.values.shape)
    # Never mark already-missing cells: the scenario only hides observed data.
    return mask * tensor.mask


def _place_random_blocks(length: int, n_cells: int, block_size: int,
                         rng: np.random.Generator,
                         forbidden_margin: int = 0) -> np.ndarray:
    """Return a 0/1 vector of ``length`` with ~``n_cells`` cells covered by
    non-overlapping random blocks of ``block_size``."""
    row = np.zeros(length, dtype=np.float64)
    n_blocks = max(1, int(round(n_cells / block_size)))
    placed = 0
    attempts = 0
    max_attempts = 50 * n_blocks
    while placed < n_blocks and attempts < max_attempts:
        attempts += 1
        start = int(rng.integers(forbidden_margin,
                                 max(length - block_size - forbidden_margin, 1)))
        stop = start + block_size
        if row[start:stop].any():
            continue
        row[start:stop] = 1.0
        placed += 1
    return row


def mcar(tensor: TimeSeriesTensor, incomplete_fraction: float = 0.1,
         missing_rate: float = 0.1, block_size: int = 10,
         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MCAR scenario: random constant-size blocks in a fraction of the series."""
    if not 0 < incomplete_fraction <= 1:
        raise ScenarioError("incomplete_fraction must be in (0, 1]")
    if not 0 < missing_rate < 1:
        raise ScenarioError("missing_rate must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    if block_size >= length:
        raise ScenarioError(
            f"block_size {block_size} must be smaller than series length {length}")
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    chosen = rng.choice(n_series, size=n_incomplete, replace=False)
    per_series_cells = int(round(missing_rate * length))
    for row in chosen:
        flat[row] = _place_random_blocks(length, per_series_cells, block_size, rng)
    return _to_tensor_shape(tensor, flat)


def mcar_points(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
                missing_rate: float = 0.1, block_size: int = 1,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MCAR variant with small blocks (down to isolated points), Section 5.5.3."""
    return mcar(tensor, incomplete_fraction=incomplete_fraction,
                missing_rate=missing_rate, block_size=block_size, rng=rng)


def miss_disj(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MissDisj scenario: per-series disjoint blocks of length ``T / N``."""
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    block = max(1, length // n_series)
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    for row in range(n_incomplete):
        start = min(row * block, length - 1)
        stop = min((row + 1) * block, length)
        flat[row, start:stop] = 1.0
    return _to_tensor_shape(tensor, flat)


def miss_over(tensor: TimeSeriesTensor, incomplete_fraction: float = 1.0,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """MissOver scenario: blocks of length ``2T / N`` overlapping neighbours."""
    rng = rng or np.random.default_rng(0)
    n_series, length = tensor.n_series, tensor.n_time
    block = max(1, length // n_series)
    flat = _series_view(tensor)
    n_incomplete = max(1, int(round(incomplete_fraction * n_series)))
    for row in range(n_incomplete):
        start = min(row * block, length - 1)
        if row == n_series - 1:
            stop = min(start + block, length)
        else:
            stop = min(start + 2 * block, length)
        flat[row, start:stop] = 1.0
    return _to_tensor_shape(tensor, flat)


def blackout(tensor: TimeSeriesTensor, block_size: int = 10,
             start_fraction: float = 0.05,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Blackout scenario: the same time range missing from every series."""
    length = tensor.n_time
    if block_size >= length:
        raise ScenarioError(
            f"block_size {block_size} must be smaller than series length {length}")
    start = int(round(start_fraction * length))
    start = min(start, length - block_size)
    flat = _series_view(tensor)
    flat[:, start:start + block_size] = 1.0
    return _to_tensor_shape(tensor, flat)


_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "mcar": mcar,
    "mcar_points": mcar_points,
    "miss_disj": miss_disj,
    "miss_over": miss_over,
    "blackout": blackout,
}


@dataclass
class MissingScenario:
    """A named, parameterised missing-value scenario.

    Example
    -------
    >>> scenario = MissingScenario("mcar", {"incomplete_fraction": 0.5})
    >>> missing_mask = scenario.generate(dataset, seed=3)
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _GENERATORS:
            raise ScenarioError(
                f"unknown scenario {self.name!r}; known: {sorted(_GENERATORS)}")

    def generate(self, tensor: TimeSeriesTensor, seed: int = 0) -> np.ndarray:
        """Generate the missing mask for ``tensor`` with a fixed ``seed``."""
        rng = np.random.default_rng(seed)
        return _GENERATORS[self.name](tensor, rng=rng, **self.params)

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({params})"


def apply_scenario(tensor: TimeSeriesTensor, scenario: MissingScenario,
                   seed: int = 0):
    """Apply ``scenario`` to ``tensor``.

    Returns
    -------
    (incomplete, missing_mask):
        ``incomplete`` is a copy of ``tensor`` with the scenario's cells
        hidden; ``missing_mask`` marks exactly those cells (the evaluation
        set).
    """
    missing_mask = scenario.generate(tensor, seed=seed)
    return tensor.with_missing(missing_mask), missing_mask


def list_scenarios() -> list:
    """Names of all registered scenario generators."""
    return sorted(_GENERATORS)
