"""Recovering an IoT sensor blackout.

Blackout is the hardest missing-value scenario in the paper: every sensor
stops reporting for the same time range (a gateway outage), so nothing can be
copied from correlated sensors — the only usable signal is the repeating
pattern *within* each series, which is exactly what DeepMVI's temporal
transformer extracts.

The example hides a blackout window from a temperature-like sensor panel,
imputes it with DeepMVI, CDRec and linear interpolation through the
``repro.api`` service layer, prints the MAE, and draws a small ASCII chart
of the reconstructed block for one sensor.

Run with::

    python examples/sensor_blackout_recovery.py [--fast]
"""

import argparse

import numpy as np

from repro import DeepMVIConfig, api, load_dataset, mae
from repro.data.missing import MissingScenario, apply_scenario


def ascii_chart(series_by_label, width=60, height=9):
    """Render a few aligned series as a crude ASCII chart."""
    labels = list(series_by_label)
    stacked = np.stack([series_by_label[label] for label in labels])
    lo, hi = stacked.min(), stacked.max()
    span = hi - lo if hi > lo else 1.0
    step = max(1, stacked.shape[1] // width)
    lines = []
    for label, series in zip(labels, stacked):
        sampled = series[::step][:width]
        levels = np.round((sampled - lo) / span * (height - 1)).astype(int)
        blocks = "▁▂▃▄▅▆▇█"
        chart = "".join(blocks[min(level, len(blocks) - 1)] for level in levels)
        lines.append(f"{label:<12} {chart}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="use a tiny dataset and model (for smoke testing)")
    args = parser.parse_args()

    size = "tiny" if args.fast else "small"
    data = load_dataset("temperature", size=size, seed=3)
    print(f"Sensor panel: {data!r}")

    block = 10 if args.fast else 40
    scenario = MissingScenario("blackout", {"block_size": block, "start_fraction": 0.4})
    incomplete, missing_mask = apply_scenario(data, scenario, seed=4)
    start = int(np.argwhere(missing_mask.reshape(data.n_series, -1)[0] == 1)[0, 0])
    print(f"Blackout: every sensor silent for steps {start}..{start + block - 1}\n")

    config = DeepMVIConfig.fast() if args.fast else DeepMVIConfig(
        max_epochs=25, samples_per_epoch=512, patience=5)
    methods = {
        "DeepMVI": ("deepmvi", {"config": config}),
        "CDRec": ("cdrec", {}),
        "Interpolation": ("interpolation", {}),
    }

    # Fit every method once, then serve the blackout tensor from the stored
    # models in one micro-batched gather().
    service = api.ImputationService()
    tickets = {}
    for name, (method, kwargs) in methods.items():
        model_id = service.fit(incomplete, method=method, **kwargs)
        tickets[service.submit(api.ImputeRequest(model_id=model_id))] = name

    reconstructions = {}
    print(f"{'method':<14} {'MAE':>8} {'seconds':>8}")
    for result in service.gather():
        name = tickets[result.request_id]
        completed = result.completed
        error = mae(completed, data, missing_mask)
        reconstructions[name] = completed.values.reshape(data.n_series, -1)[0,
                                                                            start:start + block]
        seconds = service.fit_seconds[result.model_id] + result.runtime_seconds
        print(f"{name:<14} {error:>8.3f} {seconds:>8.1f}")

    truth_block = data.values.reshape(data.n_series, -1)[0, start:start + block]
    print("\nReconstruction of the blackout window for sensor 0:")
    print(ascii_chart({"truth": truth_block, **reconstructions}))


if __name__ == "__main__":
    main()
