"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that fully offline environments (no ``wheel`` package available
for PEP 660 editable installs) can still do ``python setup.py develop`` or
legacy ``pip install -e .`` installs.
"""

from setuptools import setup

setup()
