"""Tests of DeepMVIConfig validation and helpers."""

import pytest

from repro.core.config import DeepMVIConfig
from repro.exceptions import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = DeepMVIConfig()
        assert config.window == 10
        assert config.n_heads == 4

    @pytest.mark.parametrize("field,value", [
        ("n_filters", 0),
        ("window", 1),
        ("n_heads", 0),
        ("embedding_dim", 0),
        ("validation_fraction", 0.0),
        ("validation_fraction", 0.95),
        ("max_context_windows", 2),
        ("batch_size", 0),
        ("samples_per_epoch", 0),
        ("kernel_gamma", 0.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DeepMVIConfig(**{field: value})


class TestHelpers:
    def test_window_rule_for_large_blocks(self):
        config = DeepMVIConfig()
        assert config.with_window_for_block_size(150.0).window == 20
        assert config.with_window_for_block_size(50.0).window == 10

    def test_window_rule_returns_copy(self):
        config = DeepMVIConfig()
        changed = config.with_window_for_block_size(150.0)
        assert config.window == 10
        assert changed is not config

    def test_ablated_flags(self):
        config = DeepMVIConfig().ablated(use_kernel_regression=False,
                                         use_fine_grained=False)
        assert not config.use_kernel_regression
        assert not config.use_fine_grained
        assert config.use_temporal_transformer

    def test_paper_scale_uses_paper_hyperparameters(self):
        config = DeepMVIConfig.paper_scale()
        assert config.n_filters == 32
        assert config.embedding_dim == 10
        assert config.n_heads == 4

    def test_fast_is_small(self):
        config = DeepMVIConfig.fast()
        assert config.n_filters <= 8
        assert config.max_epochs <= 5

    def test_fast_accepts_overrides(self):
        config = DeepMVIConfig.fast(max_epochs=7)
        assert config.max_epochs == 7
